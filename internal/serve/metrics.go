package serve

import (
	"fmt"
	"io"
	"sync"

	"conspec/internal/buildinfo"
	"conspec/internal/diskcache"
	"conspec/internal/exp"
	"conspec/internal/obs"
	"conspec/internal/serve/journal"
)

// CacheStats is the optional interface a Config.Cache can implement (as
// *diskcache.Store does) to export occupancy and eviction counters through
// /metrics.
type CacheStats interface {
	Stats() diskcache.Stats
}

// serverMetrics aggregates server-level counters into an obs.Registry and
// renders them on demand. The obs registry's counters are plain (non-atomic)
// uint64 columns — the registry contract makes synchronization the caller's
// job — so every write and the exposition read happen under mu.
type serverMetrics struct {
	mu  sync.Mutex
	reg *obs.Registry

	submittedC *obs.Counter
	rejectedC  *obs.Counter
	throttledC *obs.Counter
	recoveredC *obs.Counter
	doneC      *obs.Counter
	failedC    *obs.Counter
	canceledC  *obs.Counter

	executedC *obs.Counter
	memHitsC  *obs.Counter
	diskHitsC *obs.Counter

	skippedCyclesC *obs.Counter
	skipSpansC     *obs.Counter

	queuedG  *obs.Gauge
	runningG *obs.Gauge
}

func newServerMetrics() *serverMetrics {
	reg := obs.NewRegistry()
	return &serverMetrics{
		reg:            reg,
		submittedC:     reg.Counter("jobs_submitted_total"),
		rejectedC:      reg.Counter("jobs_rejected_total"),
		throttledC:     reg.Counter("jobs_throttled_total"),
		recoveredC:     reg.Counter("jobs_recovered_total"),
		doneC:          reg.Counter("jobs_done_total"),
		failedC:        reg.Counter("jobs_failed_total"),
		canceledC:      reg.Counter("jobs_canceled_total"),
		executedC:      reg.Counter("runs_executed_total"),
		memHitsC:       reg.Counter("cache_hits_memory_total"),
		diskHitsC:      reg.Counter("cache_hits_disk_total"),
		skippedCyclesC: reg.Counter("sim_skipped_cycles_total"),
		skipSpansC:     reg.Counter("sim_skip_spans_total"),
		queuedG:        reg.Gauge("jobs_queued"),
		runningG:       reg.Gauge("jobs_running"),
	}
}

func (m *serverMetrics) submitted() {
	m.mu.Lock()
	m.submittedC.Add(1)
	m.mu.Unlock()
}

func (m *serverMetrics) rejected() {
	m.mu.Lock()
	m.rejectedC.Add(1)
	m.mu.Unlock()
}

// throttled counts submissions denied by the per-client quota limiter.
func (m *serverMetrics) throttled() {
	m.mu.Lock()
	m.throttledC.Add(1)
	m.mu.Unlock()
}

func (m *serverMetrics) recovered() {
	m.mu.Lock()
	m.recoveredC.Add(1)
	m.mu.Unlock()
}

// attachStores registers readouts over the disk cache (when the configured
// cache exposes Stats) and the job journal, pulled live at every /metrics
// exposition:
//
//	cache_disk_gets_total / cache_disk_hits_total store-level lookups
//	cache_disk_bytes / cache_disk_entries        current occupancy
//	cache_disk_evictions_total (+ evicted bytes) LRU budget enforcement
//	cache_disk_quarantined_total                 corrupt entries moved aside
//	cache_disk_gc_sweeps_total                   background GC passes
//	cache_disk_put_errors_total                  failed writes (disk full…)
//	journal_wal_bytes / journal_live_jobs        WAL size and live jobs
//	journal_appends_total / journal_compactions_total
func (m *serverMetrics) attachStores(cache exp.ResultCache, jr *journal.Journal) {
	if cs, ok := cache.(CacheStats); ok && cs != nil {
		m.reg.GaugeFunc("cache_disk_gets_total", func() uint64 { return cs.Stats().Gets })
		m.reg.GaugeFunc("cache_disk_hits_total", func() uint64 { return cs.Stats().Hits })
		m.reg.GaugeFunc("cache_disk_bytes", func() uint64 { return uint64(cs.Stats().Bytes) })
		m.reg.GaugeFunc("cache_disk_entries", func() uint64 { return uint64(cs.Stats().Entries) })
		m.reg.GaugeFunc("cache_disk_evictions_total", func() uint64 { return cs.Stats().Evictions })
		m.reg.GaugeFunc("cache_disk_evicted_bytes_total", func() uint64 { return cs.Stats().EvictedBytes })
		m.reg.GaugeFunc("cache_disk_quarantined_total", func() uint64 { return cs.Stats().Quarantined })
		m.reg.GaugeFunc("cache_disk_gc_sweeps_total", func() uint64 { return cs.Stats().GCSweeps })
		m.reg.GaugeFunc("cache_disk_put_errors_total", func() uint64 { return cs.Stats().PutErrs })
	}
	if jr != nil {
		m.reg.GaugeFunc("journal_wal_bytes", func() uint64 {
			wal, _, _ := jr.Sizes()
			return uint64(wal)
		})
		m.reg.GaugeFunc("journal_appends_total", func() uint64 {
			_, appends, _ := jr.Sizes()
			return appends
		})
		m.reg.GaugeFunc("journal_compactions_total", func() uint64 {
			_, _, compactions := jr.Sizes()
			return compactions
		})
		m.reg.GaugeFunc("journal_live_jobs", func() uint64 { return uint64(jr.Live()) })
	}
}

// jobFinished records a terminal job plus its engine-level run accounting.
func (m *serverMetrics) jobFinished(status Status, st exp.Stats) {
	m.mu.Lock()
	defer m.mu.Unlock()
	switch status {
	case StatusDone:
		m.doneC.Add(1)
	case StatusFailed:
		m.failedC.Add(1)
	case StatusCanceled:
		m.canceledC.Add(1)
	}
	m.executedC.Add(st.Executed)
	m.memHitsC.Add(st.Hits)
	m.diskHitsC.Add(st.DiskHits)
	m.skippedCyclesC.Add(st.SkippedCycles)
	m.skipSpansC.Add(st.SkipSpans)
}

func (m *serverMetrics) setQueue(queued, running int) {
	m.mu.Lock()
	m.queuedG.Set(uint64(queued))
	m.runningG.Set(uint64(running))
	m.mu.Unlock()
}

func (m *serverMetrics) write(w io.Writer) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := writeBuildInfo(w); err != nil {
		return err
	}
	return obs.WritePrometheus(w, "conspec_served_", m.reg)
}

// writeBuildInfo emits the conspec_build_info identity gauge: a constant-1
// sample whose labels carry the running binary's build identity, the
// standard join key for dashboards (obs.WritePrometheus has no label
// support, so the line is written by hand in the same exposition format).
func writeBuildInfo(w io.Writer) error {
	bi := buildinfo.Get()
	_, err := fmt.Fprintf(w,
		"# TYPE conspec_build_info gauge\nconspec_build_info{module=%q,version=%q,revision=%q,dirty=%q,go_version=%q} 1\n",
		bi.Module, bi.Version, bi.Revision, fmt.Sprintf("%t", bi.Dirty), bi.GoVersion)
	return err
}
