# conspec build/verify targets.
#
#   make tier1          — the PR gate: build, lint (gofmt + vet), full test
#                         suite, the race detector over the experiment
#                         engine's worker pool, the obs sinks, and the serve
#                         daemon, the chaos gate (fault-injection corpus +
#                         self-checking stress), a one-iteration
#                         BenchmarkFig5 smoke run, the conspec-served
#                         end-to-end smoke (submit, drain, warm-cache
#                         restart), the crash smoke (kill -9 mid-suite,
#                         journal recovery, bounded-cache eviction), the
#                         trace smoke (flight-recorder dump on the deadlock
#                         reproducer + span-traced suite), the fleet smoke
#                         (coordinator + 3 leased workers beat standalone,
#                         survive kill -9 with zero lost results), and the
#                         defense smoke matrix (every registered backend vs
#                         the Spectre V1 PoC).
#   make chaos          — the robustness gate on its own: every fault class
#                         must be caught, and every mechanism must survive
#                         a per-cycle invariant audit over the random-program
#                         corpus.
#   make bench-snapshot — run the tracked benchmark set and write
#                         BENCH_<sha>.json via cmd/conspec-benchstat.
#   make bench-compare  — diff the two most recent BENCH_*.json snapshots
#                         and FAIL (exit 1) if BenchmarkFig5 or any
#                         BenchmarkSecMatrix* regressed ns/op by more than
#                         5% — the perf gate for perf-sensitive PRs.

GO ?= go

# The benchmarks whose numbers are tracked across PRs in BENCH_*.json:
# the end-to-end Figure 5 evaluation plus the per-component microbenches.
TRACKED_BENCHES = ^(BenchmarkFig5|BenchmarkSimulatorThroughput|BenchmarkSecMatrixDispatch|BenchmarkSecMatrixHazardCheck|BenchmarkTPBufQuery|BenchmarkCacheAccess)$$

.PHONY: all build fmt vet lint lint-defense test race chaos benchsmoke serve-smoke crash-smoke trace-smoke fleet-smoke defense-matrix tier1 bench bench-snapshot bench-compare

all: tier1

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# fmt fails (and lists the offenders) if any file is not gofmt-clean.
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
	    echo "gofmt needed:"; echo "$$out"; exit 1; fi

# lint-defense keeps the pipeline mechanism-agnostic: only the registry
# bridge (internal/pipeline/defense.go) may name concrete mechanisms.
lint-defense:
	sh scripts/lint_defense.sh

lint: fmt vet lint-defense

test:
	$(GO) test ./...

# The engine schedules simulations on a bounded worker pool with a shared
# memo cache, and the obs sinks/registry sit on the hot cycle loop; the
# fault injector's hook rides that loop too. The serve daemon adds its own
# worker pool, SSE fan-out, and metrics mutex on top. Run all of them under
# the race detector on every PR.
race:
	$(GO) test -race ./internal/exp ./internal/obs ./internal/faultinject \
	    ./internal/serve ./internal/serve/client ./internal/serve/journal \
	    ./internal/fleet

# The robustness gate: the seeded fault-injection corpus (every fault class
# must be detected by the invariant auditor, the watchdog, or the attack
# harness's leak check), the hand-written deadlock reproducer, and the
# per-cycle self-check stress run over every mechanism.
chaos:
	$(GO) test -count=1 ./internal/faultinject
	$(GO) test -count=1 -run '^(TestWatchdogDeadlockReproducer|TestSelfCheckStressAllMechanisms|TestSelfCheckCleanRun)$$' ./internal/pipeline

# One iteration of the Figure 5 evaluation: catches benchmark-harness rot
# (renamed suites, broken specs) without paying for a full measurement.
benchsmoke:
	$(GO) test -run '^$$' -bench '^BenchmarkFig5$$' -benchtime 1x .

# End-to-end check of the simulation service: start conspec-served on a
# random port with a fresh persistent store, run a small suite through
# conspec-ctl, SIGTERM-restart the daemon, and assert the identical
# resubmission is served entirely from the disk tier (zero simulations,
# verified via /metrics).
serve-smoke:
	sh scripts/serve_smoke.sh

# The crash-safety gate: submit a suite, kill -9 the daemon mid-run,
# restart it over the same journal and store, and assert the job is
# recovered and completes with every pre-crash simulation served from the
# disk cache; then a sustained run under a tiny -cache-max-bytes budget
# must evict (visible in /metrics) while staying under the cap; then the
# journal package under the race detector.
crash-smoke:
	sh scripts/crash_smoke.sh

# The defense smoke matrix: every registered backend runs two workloads for
# overhead and faces the canonical Spectre V1 PoC; each verdict must match
# the backend's documented expectation (origin and SSBD leak, the rest
# block).
defense-matrix:
	$(GO) test -count=1 -run '^(TestDefenseMatrix|TestDefenseHooksGolden)$$' ./internal/exp ./internal/pipeline

# Observability smoke: the deadlock reproducer with the flight recorder
# armed must leave a parseable dump covering the final window before the
# watchdog trip, and a span-traced suite run must export the
# suite > run > phase tree as loadable Chrome trace JSON. Set TRACE_DIR to
# keep the artifacts (CI uploads them).
trace-smoke:
	sh scripts/trace_smoke.sh

# The distributed-tier gate: a duplicate-heavy defense batch must finish
# strictly faster on a coordinator + 3 leased workers (subsets spread
# across the fleet, duplicate submissions coalesced onto one lease) with
# a result document identical to the standalone server's; then kill -9 a
# worker mid-lease and assert the job is re-queued to a survivor and
# completes with every pre-kill simulation reused from the coordinator's
# result store (zero lost results, verified via /metrics); then drain a
# worker through conspec-ctl.
fleet-smoke:
	sh scripts/fleet_smoke.sh

tier1: build lint test race chaos benchsmoke serve-smoke crash-smoke trace-smoke fleet-smoke defense-matrix

bench:
	$(GO) test -bench=. -benchmem -benchtime=1x

bench-snapshot:
	$(GO) test -run '^$$' -bench '$(TRACKED_BENCHES)' -benchmem . \
	    | $(GO) run ./cmd/conspec-benchstat -snapshot \
	        -sha $$(git rev-parse --short HEAD) \
	        -out BENCH_$$(git rev-parse --short HEAD).json
	@echo wrote BENCH_$$(git rev-parse --short HEAD).json

# Compare the two most recently modified snapshots (older as the base).
# The gate fails the target when a perf-critical benchmark (Fig5 or the
# SecMatrix kernels) regressed its ns/op by more than 5%.
bench-compare:
	@set -- $$(ls -1t BENCH_*.json | head -2); \
	if [ $$# -lt 2 ]; then echo "need two BENCH_*.json snapshots"; exit 1; fi; \
	$(GO) run ./cmd/conspec-benchstat -compare -fail-on-regress 5 "$$2" "$$1"
