package fleet

import (
	"sync"
	"time"
)

// Limiter is a per-client token-bucket implementing serve.SubmitLimiter:
// each client gets Burst tokens refilled at Rate tokens/second, and one
// submission spends one token. It protects the coordinator's submit path
// from a single client flooding the fleet-wide queue; clients over budget
// get 429 + Retry-After and the retrying client library backs off.
type Limiter struct {
	// Rate is tokens (submissions) per second per client.
	Rate float64
	// Burst is the bucket capacity (max submissions in an instant).
	Burst int

	// now is the clock seam for tests.
	now func() time.Time

	mu      sync.Mutex
	buckets map[string]*bucket
}

// bucket is one client's token balance at its last refill.
type bucket struct {
	tokens float64
	last   time.Time
}

// maxBuckets bounds the client table; when exceeded, fully-refilled
// buckets (idle clients) are dropped — they would be recreated full
// anyway.
const maxBuckets = 16384

// NewLimiter returns a limiter allowing rate submissions/second with the
// given burst per client. Non-positive values are clamped to a minimal
// working quota (1 token, 1 burst).
func NewLimiter(rate float64, burst int) *Limiter {
	if rate <= 0 {
		rate = 1
	}
	if burst < 1 {
		burst = 1
	}
	return &Limiter{Rate: rate, Burst: burst, now: time.Now, buckets: make(map[string]*bucket)}
}

// Allow implements serve.SubmitLimiter: it spends one token for client,
// or reports how long until one accrues.
func (l *Limiter) Allow(client string) (bool, time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	b := l.buckets[client]
	if b == nil {
		if len(l.buckets) >= maxBuckets {
			l.pruneLocked(now)
		}
		b = &bucket{tokens: float64(l.Burst), last: now}
		l.buckets[client] = b
	}
	// Refill for the elapsed time, capped at the burst.
	b.tokens += now.Sub(b.last).Seconds() * l.Rate
	if b.tokens > float64(l.Burst) {
		b.tokens = float64(l.Burst)
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := time.Duration((1 - b.tokens) / l.Rate * float64(time.Second))
	if wait < time.Second {
		wait = time.Second
	}
	return false, wait
}

// pruneLocked drops idle clients (buckets that have refilled to full) to
// bound the table. Caller holds l.mu.
func (l *Limiter) pruneLocked(now time.Time) {
	for c, b := range l.buckets {
		if b.tokens+now.Sub(b.last).Seconds()*l.Rate >= float64(l.Burst) {
			delete(l.buckets, c)
		}
	}
}
