package client

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"

	"conspec/internal/serve"
)

// startServer runs a real serve.Server with a tiny real-simulation budget.
func startServer(t *testing.T) *Client {
	t.Helper()
	s := serve.New(serve.Config{Workers: 1, QueueCap: 4})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return New(ts.URL)
}

func tinySpec() serve.JobSpec {
	return serve.JobSpec{Suite: "lru", Benches: []string{"astar"}, Warmup: 2000, Measure: 8000}
}

func TestClientSubmitWatchGet(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulations")
	}
	c := startServer(t)
	ctx := context.Background()

	st, err := c.Submit(ctx, tinySpec())
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if st.ID == "" || st.Status != serve.StatusQueued {
		t.Fatalf("submit returned %+v", st)
	}

	var sawProgress, sawTerminal bool
	err = c.Watch(ctx, st.ID, func(ev serve.Event) error {
		if ev.Type == "progress" {
			sawProgress = true
		}
		if ev.Terminal() {
			sawTerminal = true
		}
		return nil
	})
	if err != nil {
		t.Fatalf("watch: %v", err)
	}
	if !sawProgress || !sawTerminal {
		t.Fatalf("watch saw progress=%v terminal=%v", sawProgress, sawTerminal)
	}

	done, err := c.Get(ctx, st.ID)
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	if done.Status != serve.StatusDone || done.Result == nil || done.Result.LRU == nil {
		t.Fatalf("final job %+v missing lru result", done.Status)
	}

	jobs, err := c.List(ctx)
	if err != nil {
		t.Fatalf("list: %v", err)
	}
	if len(jobs) != 1 || jobs[0].ID != st.ID || jobs[0].Result != nil {
		t.Fatalf("list returned %+v", jobs)
	}

	metrics, err := c.Metrics(ctx)
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	if !strings.Contains(metrics, "conspec_served_jobs_done_total 1") {
		t.Fatalf("metrics missing done counter:\n%s", metrics)
	}
}

func TestClientErrors(t *testing.T) {
	c := startServer(t)
	ctx := context.Background()

	if _, err := c.Get(ctx, "jdeadbeef0000"); err == nil {
		t.Fatal("get of unknown job succeeded")
	} else if apiErr, ok := err.(*APIError); !ok || apiErr.StatusCode != 404 {
		t.Fatalf("get err %v, want 404 APIError", err)
	}

	if _, err := c.Submit(ctx, serve.JobSpec{Suite: "nope"}); err == nil {
		t.Fatal("bad suite accepted")
	} else if apiErr, ok := err.(*APIError); !ok || apiErr.StatusCode != 400 || apiErr.IsRetryable() {
		t.Fatalf("submit err %v, want non-retryable 400", err)
	}
}
