package obs

import (
	"strings"
	"testing"
)

func TestWritePrometheusScalars(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_done_total")
	g := r.Gauge("jobs_running")
	r.GaugeFunc(
		"weird.name-1", func() uint64 { return 9 })
	c.Add(3)
	g.Set(2)

	var sb strings.Builder
	if err := WritePrometheus(&sb, "conspec_served_", r); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"conspec_served_jobs_done_total 3\n",
		"conspec_served_jobs_running 2\n",
		"conspec_served_weird_name_1 9\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestWritePrometheusHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []uint64{1, 4, 16})
	for _, v := range []uint64{1, 2, 3, 20, 100} {
		h.Observe(v)
	}
	var sb strings.Builder
	if err := WritePrometheus(&sb, "x_", r); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE x_lat histogram\n",
		"x_lat_bucket{le=\"1\"} 1\n",
		"x_lat_bucket{le=\"4\"} 3\n",
		"x_lat_bucket{le=\"16\"} 3\n",
		"x_lat_bucket{le=\"+Inf\"} 5\n",
		"x_lat_sum 126\n",
		"x_lat_count 5\n",
		"x_lat_max 100\n", // summary column kept: buckets don't carry max
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// The flat .count/.sum summary columns must not duplicate the
	// histogram series.
	if strings.Contains(out, "x_lat_count ") && strings.Count(out, "x_lat_count") > 1 {
		t.Errorf("duplicated count series:\n%s", out)
	}
	if strings.Contains(out, "x_lat_sum ") && strings.Count(out, "x_lat_sum") > 1 {
		t.Errorf("duplicated sum series:\n%s", out)
	}
}

// TestWritePrometheusHistogramObserveN pins the bucket cumulation under the
// bulk form: ObserveN(v, n) must render exactly like n Observe(v) calls —
// each _bucket{le} is the running total of every bucket at or below it, and
// _sum/_count scale by n. The stall skipper credits whole skipped spans
// this way, so a mistake here silently skews every occupancy histogram.
func TestWritePrometheusHistogramObserveN(t *testing.T) {
	bounds := []uint64{1, 4, 16}
	bulk := NewRegistry()
	hb := bulk.Histogram("occ", bounds)
	hb.ObserveN(0, 7)  // le="1" bucket
	hb.ObserveN(4, 10) // le="4" boundary value lands in its own bucket
	hb.ObserveN(5, 3)  // le="16"
	hb.ObserveN(99, 2) // +Inf overflow bucket
	hb.ObserveN(50, 0) // n=0 must be a no-op
	var sb strings.Builder
	if err := WritePrometheus(&sb, "x_", bulk); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"x_occ_bucket{le=\"1\"} 7\n",
		"x_occ_bucket{le=\"4\"} 17\n",
		"x_occ_bucket{le=\"16\"} 20\n",
		"x_occ_bucket{le=\"+Inf\"} 22\n",
		"x_occ_sum 253\n", // 0*7 + 4*10 + 5*3 + 99*2
		"x_occ_count 22\n",
		"x_occ_max 99\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	// Equivalence: the unrolled registry must expose byte-identical text.
	unrolled := NewRegistry()
	hu := unrolled.Histogram("occ", bounds)
	for _, o := range []struct{ v, n uint64 }{{0, 7}, {4, 10}, {5, 3}, {99, 2}} {
		for i := uint64(0); i < o.n; i++ {
			hu.Observe(o.v)
		}
	}
	var sb2 strings.Builder
	if err := WritePrometheus(&sb2, "x_", unrolled); err != nil {
		t.Fatal(err)
	}
	if sb2.String() != out {
		t.Errorf("ObserveN exposition diverges from unrolled Observe:\nbulk:\n%s\nunrolled:\n%s", out, sb2.String())
	}
}
