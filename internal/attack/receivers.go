package attack

import (
	"fmt"

	"conspec/internal/asm"
)

// emitProbeFlushReload emits the Flush+Reload receiver: reload each guess's
// transmission line under RDCYCLE timing; the fastest reload is the line
// the victim's speculative execution refilled.
func emitProbeFlushReload(b *asm.Builder, id string, shift int32) {
	loop := asm.Label("frl_" + id)
	next := asm.Label("frn_" + id)
	if shift >= 12 {
		// Page-granular probing would otherwise measure the DTLB walk, not
		// the cache: a blocked suspect miss still translates its address
		// (the paper requires the PPN before the TPBuf lookup), so the TLB
		// entry is warm for the secret's page even when the refill was
		// discarded. Real Flush+Reload PoCs neutralize this by touching a
		// DIFFERENT line of each probe page first; do the same.
		warm := asm.Label("frw_" + id)
		b.Li(rGuess, 1)
		b.Bind(warm)
		b.Shli(rTmpA, rGuess, shift)
		b.Add(rTmpA, rA2, rTmpA)
		b.Ld1(asm.T2, rTmpA, 2048) // same page, different line
		b.Addi(rGuess, rGuess, 1)
		b.Li(rTmpB, probeEntries)
		b.Blt(rGuess, rTmpB, warm)
		b.Fence()
	}
	b.Li(rGuess, 1) // guess 0 is polluted by training
	b.Li(rBestLat, 1<<30)
	b.Li(rBestVal, 0)
	b.Bind(loop)
	b.Shli(rTmpA, rGuess, shift)
	b.Add(rTmpA, rA2, rTmpA)
	b.Fence()
	b.Rdcycle(asm.T2)
	b.Ld1(asm.T3, rTmpA, 0)
	b.Fence()
	b.Rdcycle(asm.T4)
	b.Sub(asm.T4, asm.T4, asm.T2) // latency
	b.Bgeu(asm.T4, rBestLat, next)
	b.Add(rBestLat, asm.T4, asm.Zero)
	b.Add(rBestVal, rGuess, asm.Zero)
	b.Bind(next)
	b.Addi(rGuess, rGuess, 1)
	b.Li(rTmpB, probeEntries)
	b.Blt(rGuess, rTmpB, loop)
}

// emitProbeFlushFlush emits the Flush+Flush receiver: time CLFLUSH itself.
// Flushing a present line is slower than flushing an absent one, so the
// SLOWEST flush identifies the refilled line — and the probe leaves no
// reload footprint of its own.
func emitProbeFlushFlush(b *asm.Builder, id string, shift int32) {
	loop := asm.Label("ffl_" + id)
	next := asm.Label("ffn_" + id)
	b.Li(rGuess, 1)
	b.Li(rBestLat, 0)
	b.Li(rBestVal, 0)
	b.Bind(loop)
	b.Shli(rTmpA, rGuess, shift)
	b.Add(rTmpA, rA2, rTmpA)
	b.Fence()
	b.Rdcycle(asm.T2)
	b.Clflush(rTmpA, 0)
	b.Fence()
	b.Rdcycle(asm.T4)
	b.Sub(asm.T4, asm.T4, asm.T2)
	b.Bgeu(rBestLat, asm.T4, next) // keep the maximum
	b.Add(rBestLat, asm.T4, asm.Zero)
	b.Add(rBestVal, rGuess, asm.Zero)
	b.Bind(next)
	b.Addi(rGuess, rGuess, 1)
	b.Li(rTmpB, probeEntries)
	b.Blt(rGuess, rTmpB, loop)
}

// emitEvictTransmission emits the Evict+Reload eviction phase: instead of
// CLFLUSH, walk ways*L1-way-stride conflict lines in the attacker's private
// buffer for each guess's set, forcing the transmission lines out of L1.
func emitEvictTransmission(b *asm.Builder, id string, shift int32, l1Sets, l1Ways int) {
	outer := asm.Label("evo_" + id)
	inner := asm.Label("evi_" + id)
	wayStride := int32(l1Sets * 64)
	setMask := int32(l1Sets-1) << 6
	b.Li(rGuess, 0)
	b.Bind(outer)
	// Set index (as a byte offset) of this guess's transmission line.
	b.Shli(rTmpA, rGuess, shift)
	b.Add(rTmpA, rA2, rTmpA)
	b.Andi(rTmpA, rTmpA, setMask)
	b.Add(rTmpA, rEvict, rTmpA) // way-0 conflict line
	b.Li(asm.T5, 0)             // way counter
	b.Bind(inner)
	b.Ld(asm.T6, rTmpA, 0)
	b.Addi(rTmpA, rTmpA, wayStride)
	b.Addi(asm.T5, asm.T5, 1)
	b.Li(rTmpB, int32(l1Ways))
	b.Blt(asm.T5, rTmpB, inner)
	b.Addi(rGuess, rGuess, 1)
	b.Li(rTmpB, probeEntries)
	b.Blt(rGuess, rTmpB, outer)
	b.Fence()
}

// emitPrime fills every monitored set (1..probeEntries-1, offset from the
// transmission base) with the attacker's conflict lines. Set 0 is left
// untouched: it holds the victim's secret line, which must stay warm for
// the speculation window to outlive the branch resolution.
func emitPrime(b *asm.Builder, id string, l1Sets, l1Ways int) {
	outer := asm.Label("pro_" + id)
	inner := asm.Label("pri_" + id)
	wayStride := int32(l1Sets * 64)
	setMask := int32(l1Sets-1) << 6
	b.Li(rGuess, 1)
	b.Bind(outer)
	b.Shli(rTmpA, rGuess, setShift)
	b.Add(rTmpA, rA2, rTmpA)
	b.Andi(rTmpA, rTmpA, setMask)
	b.Add(rTmpA, rEvict, rTmpA)
	b.Li(asm.T5, 0)
	b.Bind(inner)
	b.Ld(asm.T6, rTmpA, 0)
	b.Addi(rTmpA, rTmpA, wayStride)
	b.Addi(asm.T5, asm.T5, 1)
	b.Li(rTmpB, int32(l1Ways))
	b.Blt(asm.T5, rTmpB, inner)
	b.Addi(rGuess, rGuess, 1)
	b.Li(rTmpB, probeEntries)
	b.Blt(rGuess, rTmpB, outer)
	b.Fence()
}

// emitProbePrime times the attacker's own conflict lines per monitored set;
// the set whose ways accumulate the highest total latency lost a line to
// the victim's speculative refill.
func emitProbePrime(b *asm.Builder, id string, l1Sets, l1Ways int) {
	outer := asm.Label("ppo_" + id)
	inner := asm.Label("ppi_" + id)
	next := asm.Label("ppn_" + id)
	wayStride := int32(l1Sets * 64)
	setMask := int32(l1Sets-1) << 6
	b.Li(rGuess, 1)
	b.Li(rBestLat, 0)
	b.Li(rBestVal, 0)
	b.Bind(outer)
	b.Shli(rTmpA, rGuess, setShift)
	b.Add(rTmpA, rA2, rTmpA)
	b.Andi(rTmpA, rTmpA, setMask)
	b.Add(rTmpA, rEvict, rTmpA)
	b.Li(asm.T5, 0) // way counter
	b.Li(asm.A5, 0) // per-set latency sum
	b.Bind(inner)
	b.Fence()
	b.Rdcycle(asm.T2)
	b.Ld(asm.T6, rTmpA, 0)
	b.Fence()
	b.Rdcycle(asm.T4)
	b.Sub(asm.T4, asm.T4, asm.T2)
	b.Add(asm.A5, asm.A5, asm.T4)
	b.Addi(rTmpA, rTmpA, wayStride)
	b.Addi(asm.T5, asm.T5, 1)
	b.Li(rTmpB, int32(l1Ways))
	b.Blt(asm.T5, rTmpB, inner)
	b.Bgeu(rBestLat, asm.A5, next) // keep the maximum total
	b.Add(rBestLat, asm.A5, asm.Zero)
	b.Add(rBestVal, rGuess, asm.Zero)
	b.Bind(next)
	b.Addi(rGuess, rGuess, 1)
	b.Li(rTmpB, probeEntries)
	b.Blt(rGuess, rTmpB, outer)
}

// emitEvictTimeRound emits one Evict+Time candidate round: evict candidate
// c's set, re-open the window, trigger the out-of-bounds speculation, then
// TIME an in-bounds victim invocation that architecturally touches
// transmission[c]. If c is the secret, the speculative refill makes the
// timed run fast. rGuess holds c on entry; the measured latency lands in T4.
func emitEvictTimeRound(b *asm.Builder, id string, l1Sets, l1Ways int) {
	inner := asm.Label("eti_" + id)
	wayStride := int32(l1Sets * 64)
	setMask := int32(l1Sets-1) << 6

	// Evict candidate set c with the attacker's conflict lines.
	b.Shli(rTmpA, rGuess, setShift)
	b.Add(rTmpA, rA2, rTmpA)
	b.Andi(rTmpA, rTmpA, setMask)
	b.Add(rTmpA, rEvict, rTmpA)
	b.Li(asm.T5, 0)
	b.Bind(inner)
	b.Ld(asm.T6, rTmpA, 0)
	b.Addi(rTmpA, rTmpA, wayStride)
	b.Addi(asm.T5, asm.T5, 1)
	b.Li(rTmpB, int32(l1Ways))
	b.Blt(asm.T5, rTmpB, inner)
	b.Fence()

	// Open the window and trigger the out-of-bounds speculation.
	emitFlushBound(b)
	emitTriggerV1(b, fmt.Sprintf("%s_c", id))

	// Point array1[0] at candidate c and time the in-bounds call.
	b.Add(rTmpA, rA1, asm.Zero)
	b.St1(rGuess, rTmpA, 0)
	b.Fence()
	emitGHRNormalize(b, id+"_tm")
	b.Fence() // clean bracket: older work drained before the first read
	// A2/A3 hold the timestamps: the gadget clobbers T0-T5, so the bracket
	// must live in registers it never touches.
	b.Rdcycle(asm.A2)
	b.Li(asm.A0, 0)
	b.Jal(asm.RA, "gadget")
	b.Fence()
	b.Rdcycle(asm.A3)
	b.Sub(asm.T4, asm.A3, asm.A2)
}

// emitProbeFlushReloadRaw is the Flush+Reload receiver WITHOUT the
// TLB-neutralizing pre-pass: its timing includes the DTLB walk, so it reads
// the translation side channel as well as the cache one. Used by the
// TLB-channel scenario that motivates the DTLB-hit filter extension.
func emitProbeFlushReloadRaw(b *asm.Builder, id string, shift int32) {
	loop := asm.Label("frr_" + id)
	next := asm.Label("frx_" + id)
	b.Li(rGuess, 1)
	b.Li(rBestLat, 1<<30)
	b.Li(rBestVal, 0)
	b.Bind(loop)
	b.Shli(rTmpA, rGuess, shift)
	b.Add(rTmpA, rA2, rTmpA)
	b.Fence()
	b.Rdcycle(asm.T2)
	b.Ld1(asm.T3, rTmpA, 0)
	b.Fence()
	b.Rdcycle(asm.T4)
	b.Sub(asm.T4, asm.T4, asm.T2)
	b.Bgeu(asm.T4, rBestLat, next)
	b.Add(rBestLat, asm.T4, asm.Zero)
	b.Add(rBestVal, rGuess, asm.Zero)
	b.Bind(next)
	b.Addi(rGuess, rGuess, 1)
	b.Li(rTmpB, probeEntries)
	b.Blt(rGuess, rTmpB, loop)
}
