// Workload study: sweep a synthetic profile's hot fraction — the knob that
// controls the L1D hit rate — and watch how each mechanism's cost responds.
// This is the relationship the paper's §VI.C(2) analysis is built on: the
// cache-hit filter's benefit tracks the hit rate, and TPBuf's additional
// benefit tracks the S-Pattern mismatch rate of what remains.
//
//	go run ./examples/workload_study
package main

import (
	"fmt"
	"log"

	"conspec/internal/core"
	"conspec/internal/exp"
	"conspec/internal/pipeline"
	"conspec/internal/workload"
)

func main() {
	base := workload.Profile{
		Name:      "study",
		HotBytes:  32 * 1024,
		ColdBytes: 32 * 1024 * 1024,
		// Page-local cold streaming: high S-Pattern mismatch, so TPBuf has
		// something to rescue at the low-hit end of the sweep.
		ColdPattern:         workload.ColdSeq,
		ColdStride:          48,
		StoreFrac:           0.3,
		MemBlocks:           8,
		ChainDepth:          1,
		PhaseLen:            16,
		ColdDepFrac:         0.25,
		PredictableBranches: 1,
	}

	fmt.Printf("%-8s %-8s %-10s %-10s %-10s %-12s\n",
		"HotFrac", "L1D hit", "Baseline", "Cache-hit", "CH+TPBuf", "TP mismatch")
	for _, hot := range []float64{0.10, 0.30, 0.50, 0.70, 0.90, 0.99} {
		p := base
		p.HotFrac = hot
		w, err := workload.Generate(p)
		if err != nil {
			log.Fatal(err)
		}
		spec := exp.DefaultSpec()
		spec.Warmup, spec.Measure = 10_000, 60_000

		results := map[core.Mechanism]pipelineResult{}
		for _, m := range core.Mechanisms {
			s := spec
			s.Sec = pipeline.SecurityConfig{Mechanism: m}
			res := exp.RunWorkload(w, s)
			results[m] = pipelineResult{cycles: res.Cycles,
				hit: res.L1D.HitRate(), mismatch: res.TPBuf.MismatchRate()}
		}
		origin := float64(results[core.Origin].cycles)
		fmt.Printf("%-8.2f %-8.1f %-10.3f %-10.3f %-10.3f %-12.1f\n",
			hot,
			100*results[core.Origin].hit,
			float64(results[core.Baseline].cycles)/origin,
			float64(results[core.CacheHit].cycles)/origin,
			float64(results[core.CacheHitTPBuf].cycles)/origin,
			100*results[core.CacheHitTPBuf].mismatch)
	}
	fmt.Println("\ncolumns 3-5 are runtime normalized to Origin (lower is better)")
}

type pipelineResult struct {
	cycles   uint64
	hit      float64
	mismatch float64
}
