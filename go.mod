module conspec

go 1.22
