// Package exp contains the experiment drivers that regenerate every table
// and figure of the paper's evaluation: Figure 5 (normalized performance),
// Table IV (security), Table V (filter analysis), Table VI (core
// sensitivity), the §VI.C(1) matrix-scope decomposition, the §VI.E hardware
// overhead model, the §VII.A LRU policies and the §VII.B ICache filter.
package exp

import (
	"conspec/internal/config"
	"conspec/internal/isa"
	"conspec/internal/mem"
	"conspec/internal/pipeline"
	"conspec/internal/workload"
)

// RunSpec parameterizes one measurement run, mirroring the paper's
// methodology of a warmup phase followed by cycle-accurate measurement.
type RunSpec struct {
	Core      config.Core
	Sec       pipeline.SecurityConfig
	L1DUpdate mem.UpdatePolicy
	// Warmup and Measure are committed-instruction budgets.
	Warmup  uint64
	Measure uint64
	// MaxCycles bounds each phase defensively (0 = a generous default).
	MaxCycles uint64
}

// DefaultSpec returns the budget used by the standard experiment suites.
// The paper warms for 1B instructions and measures 1B on gem5; the same
// shape at laptop scale is tens of thousands of warmup instructions and a
// few hundred thousand measured.
func DefaultSpec() RunSpec {
	return RunSpec{
		Core:    config.PaperCore(),
		Warmup:  20_000,
		Measure: 120_000,
	}
}

// RunWorkload builds a fresh machine, loads w, warms up, resets statistics
// and measures. The returned Result covers only the measured phase.
func RunWorkload(w *workload.Workload, spec RunSpec) pipeline.Result {
	maxCycles := spec.MaxCycles
	if maxCycles == 0 {
		maxCycles = 400 * (spec.Warmup + spec.Measure)
	}
	cfg := spec.Core
	cfg.Mem.L1DUpdate = spec.L1DUpdate

	backing := isa.NewFlatMem()
	w.Load(backing)
	cpu := pipeline.NewWithMemory(cfg, spec.Sec, backing)
	cpu.SetPC(w.Entry)
	cpu.RunFor(spec.Warmup, maxCycles)
	cpu.ResetStats()
	return cpu.RunFor(spec.Measure, maxCycles)
}

// Overhead returns the runtime overhead of res relative to origin runs of
// the same instruction budget: cyclesRes/cyclesOrigin - 1.
func Overhead(origin, res pipeline.Result) float64 {
	if origin.Cycles == 0 {
		return 0
	}
	return float64(res.Cycles)/float64(origin.Cycles) - 1
}
