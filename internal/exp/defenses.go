package exp

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"conspec/internal/attack"
	"conspec/internal/config"
	"conspec/internal/core"
	"conspec/internal/pipeline"
	"conspec/internal/workload"
)

// DefenseRow is one registered backend's position in the overhead-vs-
// security trade-off: average runtime overhead versus the unprotected
// machine, and the leak verdict of the canonical Spectre V1 Flush+Reload
// PoC under that backend.
type DefenseRow struct {
	// Name is the canonical registry key; Title the display name.
	Name  string
	Title string
	// Overhead is the mean runtime overhead vs origin across the requested
	// benchmarks (0 for origin itself).
	Overhead float64
	// Leaked reports whether the V1 PoC recovered the secret; Recovered and
	// SecretLen are the byte counts behind the verdict.
	Leaked    bool
	Recovered int
	SecretLen int
	// ExpectBlock is the backend's documented V1 expectation: every real
	// defense blocks V1; origin leaks by construction and SSBD only stops
	// store bypass (V4), not branch speculation.
	ExpectBlock bool
}

// DefensesResult is the defenses suite's dataset: one row per backend, in
// registry order.
type DefensesResult struct {
	Rows []DefenseRow
}

// SecFor translates a registered defense into the pipeline security
// configuration that runs it. This is the canonical Defense→SecurityConfig
// mapping every CLI shares; it never adds fields beyond Mechanism and SSBD,
// so memo run keys for the paper variants are unchanged.
func SecFor(d core.Defense) pipeline.SecurityConfig {
	return pipeline.SecurityConfig{Mechanism: d.Mechanism(), SSBD: d.SSBD()}
}

// expectBlocksV1 is DefenseRow.ExpectBlock's source of truth, keyed by
// registry name so a backend's expectation travels with its registration.
func expectBlocksV1(d core.Defense) bool {
	switch d.Name() {
	case "origin", "ssbd":
		return false
	}
	return true
}

// resolveDefenses maps registry names (all registered backends when nil) to
// Defense values, rejecting unknown names with the registry listing.
func resolveDefenses(names []string) ([]core.Defense, error) {
	if len(names) == 0 {
		return core.Defenses(), nil
	}
	defs := make([]core.Defense, len(names))
	for i, n := range names {
		d, err := core.LookupDefense(n)
		if err != nil {
			return nil, err
		}
		defs[i] = d
	}
	return defs, nil
}

// Defenses runs the defense-matrix suite: every requested backend (all
// registered ones when defNames is nil) is measured for average overhead vs
// origin on the requested benchmarks, then attacked with the canonical V1
// Flush+Reload PoC for a leak verdict. Overhead runs flow through the memo
// cache — the paper variants share keys with fig5, invisispec with the
// compare suite — while attack runs bypass it like table4's.
func (r *Runner) Defenses(ctx context.Context, spec RunSpec, names []string, defNames []string, attackCfg config.Core) (*DefensesResult, error) {
	defs, err := resolveDefenses(defNames)
	if err != nil {
		return nil, err
	}
	profiles, err := resolveProfiles(names)
	if err != nil {
		return nil, err
	}
	out := &DefensesResult{Rows: make([]DefenseRow, len(defs))}
	n := float64(len(profiles))
	for i, d := range defs {
		row := DefenseRow{Name: d.Name(), Title: d.Title(), ExpectBlock: expectBlocksV1(d)}
		var mu sync.Mutex
		err := r.eachProfile(ctx, profiles, func(p workload.Profile) error {
			s := spec
			s.Sec = pipeline.SecurityConfig{Mechanism: core.Origin}
			origin, err := r.run(ctx, SuiteDefenses, p, s)
			if err != nil {
				return suiteErr(ctx, err)
			}
			s.Sec = SecFor(d)
			res, err := r.run(ctx, SuiteDefenses, p, s)
			if err != nil {
				return suiteErr(ctx, err)
			}
			mu.Lock()
			row.Overhead += Overhead(origin, res) / n
			mu.Unlock()
			return nil
		})
		if err != nil {
			return out, err
		}
		if err := ctx.Err(); err != nil {
			return out, err
		}
		o := attack.V1FlushReload(attackCfg).Run(attackCfg, SecFor(d))
		row.Leaked = o.Leaked
		row.Recovered = o.Correct
		row.SecretLen = len(o.Secret)
		out.Rows[i] = row
		r.emit(ProgressEvent{Suite: SuiteDefenses, Benchmark: d.Name(),
			Mechanism: d.Title(), Phase: PhaseBenchDone,
			Line: fmt.Sprintf("%-15s overhead %+6.2f%%  v1 %s", d.Name(),
				100*row.Overhead, verdict(row.Leaked))})
	}
	return out, nil
}

func verdict(leaked bool) string {
	if leaked {
		return "LEAKED"
	}
	return "DEFENDED"
}

// DefensesText renders the Fig5-style overhead-vs-security table across all
// backends.
func DefensesText(r *DefensesResult) string {
	var sb strings.Builder
	tw := newTable(&sb)
	tw.row("Defense", "Backend", "Norm.runtime", "Spectre V1", "Recovered", "Expected")
	tw.sep()
	for _, row := range r.Rows {
		want := "✓ blocks v1"
		if !row.ExpectBlock {
			want = "✗ leaks v1"
		}
		tw.row(row.Name, row.Title,
			fmt.Sprintf("%.3f", 1+row.Overhead),
			verdict(row.Leaked),
			fmt.Sprintf("%d/%d", row.Recovered, row.SecretLen),
			want)
	}
	tw.flush()
	return sb.String()
}
