package diskcache

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"conspec/internal/buildinfo"
	"conspec/internal/pipeline"
)

var testInfo = buildinfo.Info{Module: "conspec", Version: "(devel)",
	Revision: "abc123", GoVersion: "go1.24.0"}

const key = "00deadbeef00deadbeef00deadbeef00deadbeef00deadbeef00deadbeef0000"

// testKey derives a distinct valid key from an index.
func testKey(i int) string {
	return fmt.Sprintf("%02x", i%256) + key[2:56] + fmt.Sprintf("%08x", i)
}

func openTest(t *testing.T, opts Options) *Store {
	t.Helper()
	s, err := OpenFor(t.TempDir(), testInfo, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := openTest(t, Options{})
	if _, ok := s.Get(key); ok {
		t.Fatal("empty store reported a hit")
	}
	res := pipeline.Result{Cycles: 12345, Committed: 1000, Halted: true,
		Outcome: pipeline.OutcomeInstTarget, Diag: "d"}
	res.Stages.IssuedUops = 42
	s.Put(key, res)
	got, ok := s.Get(key)
	if !ok {
		t.Fatal("stored entry missed")
	}
	if got.Cycles != res.Cycles || got.Committed != res.Committed ||
		got.Halted != res.Halted || got.Outcome != res.Outcome ||
		got.Stages.IssuedUops != 42 {
		t.Errorf("round trip mismatch: got %+v want %+v", got, res)
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d, want 1", s.Len())
	}
	st := s.Stats()
	if st.Gets != 2 || st.Hits != 1 || st.Puts != 1 || st.PutErrs != 0 {
		t.Errorf("stats = %+v, want gets 2 / hits 1 / puts 1 / putErrs 0", st)
	}
	if st.Entries != 1 || st.Bytes <= 0 {
		t.Errorf("occupancy = %d entries / %d bytes, want 1 entry and positive bytes", st.Entries, st.Bytes)
	}
}

// TestReopenSurvivesRestart is the restart half of the service's acceptance
// scenario at store granularity: a fresh Store over the same root and the
// same build identity sees the previous process's entries.
func TestReopenSurvivesRestart(t *testing.T) {
	root := t.TempDir()
	s1, err := OpenFor(root, testInfo, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s1.Put(key, pipeline.Result{Cycles: 7})
	s2, err := OpenFor(root, testInfo, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := s2.Get(key); !ok || got.Cycles != 7 {
		t.Fatalf("reopened store: got %+v / %v, want cycles 7", got, ok)
	}
	// The reopened store's index found the entry on the rescan.
	if st := s2.Stats(); st.Entries != 1 || st.Bytes <= 0 {
		t.Fatalf("reopened index = %+v, want 1 entry", st)
	}
}

// TestBuildIdentityNamespacing: a different build identity must not see the
// old namespace's entries.
func TestBuildIdentityNamespacing(t *testing.T) {
	root := t.TempDir()
	s1, err := OpenFor(root, testInfo, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s1.Put(key, pipeline.Result{Cycles: 7})

	other := testInfo
	other.Revision = "def456"
	s2, err := OpenFor(root, other, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.Get(key); ok {
		t.Fatal("entry leaked across build identities")
	}
	if BuildID(testInfo) == BuildID(other) {
		t.Fatal("distinct identities produced one BuildID")
	}
	dirty := testInfo
	dirty.Dirty = true
	if BuildID(testInfo) == BuildID(dirty) {
		t.Fatal("dirty flag must change the namespace")
	}
}

// TestCorruptEntriesQuarantined: truncated, zero-byte, and wrong-identity
// entries are misses, are moved into the quarantine directory (not deleted
// blind, so an operator can inspect what rotted), and are counted.
func TestCorruptEntriesQuarantined(t *testing.T) {
	s := openTest(t, Options{})
	qdir := filepath.Join(s.Dir(), quarantineDir)

	corrupt := []struct {
		name  string
		write func(p string)
	}{
		{"truncated", func(p string) { os.WriteFile(p, []byte(`{"key":"tr`), 0o644) }},
		{"zero-byte", func(p string) { os.WriteFile(p, nil, 0o644) }},
		{"wrong-identity", func(p string) {
			// A structurally valid entry whose embedded key names a
			// different run: must not be served under this filename.
			os.WriteFile(p, []byte(`{"key":"`+key+`","result":{}}`), 0o644)
		}},
	}
	for i, c := range corrupt {
		k := testKey(i + 1)
		s.Put(k, pipeline.Result{Cycles: 7})
		p, _ := s.path(k)
		c.write(p)
		if _, ok := s.Get(k); ok {
			t.Fatalf("%s entry reported as hit", c.name)
		}
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Errorf("%s entry still in place", c.name)
		}
	}
	ents, err := os.ReadDir(qdir)
	if err != nil || len(ents) != len(corrupt) {
		t.Fatalf("quarantine holds %d files (err %v), want %d", len(ents), err, len(corrupt))
	}
	st := s.Stats()
	if st.Quarantined != uint64(len(corrupt)) {
		t.Errorf("Quarantined = %d, want %d", st.Quarantined, len(corrupt))
	}
	// Quarantined bytes no longer count against the budget index.
	if st.Entries != 0 {
		t.Errorf("index still tracks %d entries after quarantine", st.Entries)
	}
}

// TestGCSweepQuarantinesForeignCorruption: corruption that appeared behind
// the store's back (another process, bit rot) is caught by the sweep, not
// just by a Get of the exact key.
func TestGCSweepQuarantinesForeignCorruption(t *testing.T) {
	s := openTest(t, Options{})
	good, bad := testKey(1), testKey(2)
	s.Put(good, pipeline.Result{Cycles: 7})
	// Drop a corrupt entry directly into the namespace.
	p, _ := s.path(bad)
	os.MkdirAll(filepath.Dir(p), 0o755)
	os.WriteFile(p, []byte("{rot"), 0o644)

	s.GC()

	if _, err := os.Stat(p); !os.IsNotExist(err) {
		t.Error("sweep left the corrupt entry in place")
	}
	if _, ok := s.Get(good); !ok {
		t.Error("sweep lost the good entry")
	}
	st := s.Stats()
	if st.Quarantined != 1 || st.GCSweeps != 1 {
		t.Errorf("stats after sweep = %+v, want 1 quarantined / 1 sweep", st)
	}
}

// TestEvictionHoldsBudget: writes beyond MaxBytes evict least-recently-used
// entries; recently-read entries survive.
func TestEvictionHoldsBudget(t *testing.T) {
	// Size one entry, then budget for roughly four.
	probe, err := OpenFor(t.TempDir(), testInfo, Options{})
	if err != nil {
		t.Fatal(err)
	}
	probe.Put(testKey(0), pipeline.Result{Cycles: 1})
	entrySize := probe.Stats().Bytes
	if entrySize <= 0 {
		t.Fatal("probe entry has no size")
	}

	s := openTest(t, Options{MaxBytes: entrySize*4 + entrySize/2})
	for i := 1; i <= 4; i++ {
		s.Put(testKey(i), pipeline.Result{Cycles: uint64(i)})
		time.Sleep(2 * time.Millisecond) // distinct mtimes/atimes
	}
	// Touch the oldest so it becomes most-recently-used.
	if _, ok := s.Get(testKey(1)); !ok {
		t.Fatal("entry 1 missing before eviction")
	}
	time.Sleep(2 * time.Millisecond)
	// Two more writes: must evict the LRU entries (2, then 3), not 1.
	s.Put(testKey(5), pipeline.Result{Cycles: 5})
	s.Put(testKey(6), pipeline.Result{Cycles: 6})

	st := s.Stats()
	if st.Bytes > s.opts.MaxBytes {
		t.Errorf("store at %d bytes, budget %d", st.Bytes, s.opts.MaxBytes)
	}
	if st.Evictions == 0 || st.EvictedBytes == 0 {
		t.Errorf("no evictions recorded: %+v", st)
	}
	if _, ok := s.Get(testKey(1)); !ok {
		t.Error("recently-used entry 1 was evicted")
	}
	if _, ok := s.Get(testKey(2)); ok {
		t.Error("least-recently-used entry 2 survived")
	}
}

// TestOversizeEntryRejected: an entry larger than the whole budget is a
// put error, not a store-emptying event.
func TestOversizeEntryRejected(t *testing.T) {
	s := openTest(t, Options{MaxBytes: 64})
	s.Put(testKey(1), pipeline.Result{Cycles: 7, Diag: strings.Repeat("x", 256)})
	if st := s.Stats(); st.PutErrs != 1 || st.Entries != 0 {
		t.Errorf("stats = %+v, want 1 putErr and empty store", st)
	}
}

// TestBudgetAppliedAtOpen: reopening over an overfull namespace (e.g. the
// budget was lowered) trims it immediately.
func TestBudgetAppliedAtOpen(t *testing.T) {
	root := t.TempDir()
	s1, err := OpenFor(root, testInfo, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 6; i++ {
		s1.Put(testKey(i), pipeline.Result{Cycles: uint64(i)})
	}
	total := s1.Stats().Bytes

	s2, err := OpenFor(root, testInfo, Options{MaxBytes: total / 2})
	if err != nil {
		t.Fatal(err)
	}
	if st := s2.Stats(); st.Bytes > total/2 || st.Evictions == 0 {
		t.Errorf("reopen with halved budget left %d bytes (%d evictions)", st.Bytes, st.Evictions)
	}
}

func TestMalformedKeysRejected(t *testing.T) {
	s := openTest(t, Options{})
	for _, bad := range []string{"", "short", "../../../../etc/passwd",
		strings.Repeat("zz", 32), strings.Repeat("AB", 32)} {
		s.Put(bad, pipeline.Result{})
		if _, ok := s.Get(bad); ok {
			t.Errorf("malformed key %q round-tripped", bad)
		}
	}
	if s.Len() != 0 {
		t.Errorf("malformed keys created %d entries", s.Len())
	}
}

func TestNilStoreIsNoop(t *testing.T) {
	var s *Store
	s.Put(key, pipeline.Result{})
	if _, ok := s.Get(key); ok {
		t.Fatal("nil store hit")
	}
	if s.Len() != 0 || s.Dir() != "" {
		t.Fatal("nil store not inert")
	}
	s.GC()
	s.Close()
	if st := s.Stats(); st != (Stats{}) {
		t.Fatalf("nil store stats %+v", st)
	}
}
