// Package client is the Go client for the conspec-served HTTP API. It is
// the library behind conspec-ctl and the serve-smoke harness, and keeps the
// wire types (serve.JobSpec, serve.JobStatus, serve.Event) as the single
// source of truth for both sides.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"time"

	"conspec/internal/fleet"
	"conspec/internal/serve"
)

// Client talks to one conspec-served instance.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8344".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient. Watch streams
	// indefinitely, so the client must not set an overall Timeout; bound
	// watches with the context instead.
	HTTPClient *http.Client
	// Retry, when enabled (MaxAttempts > 1), makes every request retry
	// transient failures — transport errors, 429 queue-full, 503 draining —
	// with exponential backoff, and makes Watch reconnect dropped event
	// streams, resuming where it left off. The zero value disables retries
	// (one attempt, fail fast), preserving bare-Client behavior.
	Retry RetryPolicy
}

// RetryPolicy shapes the client's reaction to transient failures.
type RetryPolicy struct {
	// MaxAttempts bounds tries per request (and consecutive reconnects per
	// watch without progress). <= 1 means a single attempt, no retries.
	MaxAttempts int
	// BaseDelay is the first backoff step (default 200ms). Each further
	// attempt doubles it, up to MaxDelay (default 10s); the actual sleep is
	// jittered to [d/2, d] so synchronized clients fan out. A server-sent
	// Retry-After overrides the computed delay.
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// OnRetry, when non-nil, observes each retry before its backoff sleep
	// (for "-watch reconnecting in 2s: connection refused" style UX).
	OnRetry func(attempt int, delay time.Duration, err error)
}

// DefaultRetry is the policy conspec-ctl uses: 6 attempts, 200ms..10s
// exponential backoff — enough to ride out a server restart.
func DefaultRetry() RetryPolicy {
	return RetryPolicy{MaxAttempts: 6, BaseDelay: 200 * time.Millisecond, MaxDelay: 10 * time.Second}
}

func (p RetryPolicy) enabled() bool { return p.MaxAttempts > 1 }

// delay computes the backoff before attempt (0-based) retries, honoring the
// server's Retry-After when err carries one.
func (p RetryPolicy) delay(attempt int, err error) time.Duration {
	var apiErr *APIError
	if errors.As(err, &apiErr) && apiErr.RetryAfter > 0 {
		return apiErr.RetryAfter
	}
	d := p.BaseDelay
	if d <= 0 {
		d = 200 * time.Millisecond
	}
	maxD := p.MaxDelay
	if maxD <= 0 {
		maxD = 10 * time.Second
	}
	for i := 0; i < attempt && d < maxD; i++ {
		d *= 2
	}
	if d > maxD {
		d = maxD
	}
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
}

// retryable reports whether err is worth retrying: retryable API rejections
// (429/503) and transport-level failures, but never context cancellation or
// definitive server answers (4xx/5xx others).
func retryable(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		return apiErr.IsRetryable()
	}
	// Everything else came from the transport (connection refused during a
	// restart, reset mid-response, ...) — the canonical transient case.
	return true
}

// sleepCtx sleeps d or until ctx is done, returning ctx.Err() in that case.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// New returns a client for baseURL.
func New(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// APIError is a non-2xx response, carrying the server's error body.
type APIError struct {
	StatusCode int
	Message    string
	// RetryAfter is the parsed Retry-After header, if the server sent one
	// (429 queue-full and 503 draining responses do).
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	if e.Message != "" {
		return fmt.Sprintf("server: %s (HTTP %d)", e.Message, e.StatusCode)
	}
	return fmt.Sprintf("server: HTTP %d", e.StatusCode)
}

// IsRetryable reports whether the request can be retried later (queue full
// or draining).
func (e *APIError) IsRetryable() bool {
	return e.StatusCode == http.StatusTooManyRequests || e.StatusCode == http.StatusServiceUnavailable
}

func apiErr(resp *http.Response) error {
	var body struct {
		Error string `json:"error"`
	}
	json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&body)
	e := &APIError{StatusCode: resp.StatusCode, Message: body.Error}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		var secs int
		if _, err := fmt.Sscanf(ra, "%d", &secs); err == nil {
			e.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return e
}

// do runs one API request, retrying transient failures per c.Retry. A POST
// retried after a transport error may have been applied by the server (the
// response was lost, not necessarily the request); for job submission that
// at worst queues a duplicate job, which the shared result cache serves
// without re-simulation.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var data []byte
	if in != nil {
		var err error
		if data, err = json.Marshal(in); err != nil {
			return err
		}
	}
	attempts := c.Retry.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for attempt := 0; ; attempt++ {
		if err = c.doOnce(ctx, method, path, data, out); err == nil {
			return nil
		}
		if attempt+1 >= attempts || !retryable(err) {
			return err
		}
		d := c.Retry.delay(attempt, err)
		if c.Retry.OnRetry != nil {
			c.Retry.OnRetry(attempt+1, d, err)
		}
		if sleepCtx(ctx, d) != nil {
			return err // the last real failure, not the cancellation
		}
	}
}

func (c *Client) doOnce(ctx context.Context, method, path string, data []byte, out any) error {
	var body io.Reader
	if data != nil {
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, body)
	if err != nil {
		return err
	}
	if data != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return apiErr(resp)
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Submit queues a job and returns its initial status.
func (c *Client) Submit(ctx context.Context, spec serve.JobSpec) (serve.JobStatus, error) {
	var st serve.JobStatus
	err := c.do(ctx, http.MethodPost, "/v1/jobs", spec, &st)
	return st, err
}

// Get fetches one job, including the result document once it is done.
func (c *Client) Get(ctx context.Context, id string) (serve.JobStatus, error) {
	var st serve.JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// List fetches all jobs, newest first (no result bodies).
func (c *Client) List(ctx context.Context) ([]serve.JobStatus, error) {
	var out []serve.JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs", nil, &out)
	return out, err
}

// Cancel requests cancellation of a queued or running job.
func (c *Client) Cancel(ctx context.Context, id string) (serve.JobStatus, error) {
	var st serve.JobStatus
	err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// Trace fetches a job's span trace as Chrome trace-event JSON (the raw
// document, loadable in Perfetto) and writes it to w.
func (c *Client) Trace(ctx context.Context, id string, w io.Writer) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/jobs/"+id+"/trace", nil)
	if err != nil {
		return err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return apiErr(resp)
	}
	_, err = io.Copy(w, resp.Body)
	return err
}

// Metrics fetches the Prometheus exposition text.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", apiErr(resp)
	}
	out, err := io.ReadAll(resp.Body)
	return string(out), err
}

// callbackError marks an error that came from the caller's fn, which must
// surface immediately rather than trigger a reconnect.
type callbackError struct{ err error }

func (e *callbackError) Error() string { return e.err.Error() }

// Watch streams a job's events, calling fn for each (history replay first,
// then live frames). It returns nil when the stream ends with a terminal
// state event, the first non-nil error from fn, or the transport error.
//
// With Retry enabled, a dropped stream is reconnected with backoff and
// resumed from the last event seen: the server replays each job's full
// history on (re)subscribe, and every frame carries (epoch, seq), so the
// client skips frames it already delivered — unless the epoch changed,
// which means the server restarted and the history itself restarted (the
// job re-executed after journal recovery), in which case the replay is
// delivered in full. Each delivered event refreshes the reconnect budget;
// MaxAttempts bounds consecutive attempts without progress.
func (c *Client) Watch(ctx context.Context, id string, fn func(serve.Event) error) error {
	lastSeen := -1
	epoch := ""
	attempt := 0
	for {
		delivered, terminal, err := c.watchOnce(ctx, id, &epoch, &lastSeen, fn)
		if terminal {
			return nil
		}
		var cb *callbackError
		if errors.As(err, &cb) {
			return cb.err
		}
		if err == nil {
			// Clean EOF without a terminal frame: the server shut the stream
			// down (e.g. it exited). Retryable — the job may be journaled
			// and recovered by the next server.
			err = fmt.Errorf("event stream ended before the job finished")
		}
		if delivered > 0 {
			attempt = 0
		}
		if attempt+1 >= c.Retry.MaxAttempts || !retryable(err) {
			return err
		}
		d := c.Retry.delay(attempt, err)
		attempt++
		if c.Retry.OnRetry != nil {
			c.Retry.OnRetry(attempt, d, err)
		}
		if sleepCtx(ctx, d) != nil {
			return err
		}
	}
}

// watchOnce consumes a single event-stream connection, delivering frames
// beyond (*epoch, *lastSeen) and advancing them. It returns how many events
// it delivered and whether the stream reached a terminal frame.
func (c *Client) watchOnce(ctx context.Context, id string, epoch *string, lastSeen *int, fn func(serve.Event) error) (delivered int, terminal bool, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return 0, false, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return 0, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, false, apiErr(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		data, ok := strings.CutPrefix(sc.Text(), "data: ")
		if !ok {
			continue // event:/comment/blank lines
		}
		var ev serve.Event
		if err := json.Unmarshal([]byte(data), &ev); err != nil {
			return delivered, false, fmt.Errorf("bad event frame: %w", err)
		}
		if ev.Epoch != *epoch {
			// A different server process: its history is not ours, however
			// the seq numbers line up. Deliver its replay from the start.
			*epoch, *lastSeen = ev.Epoch, -1
		}
		if ev.Seq <= *lastSeen {
			continue // replayed history we already delivered
		}
		*lastSeen = ev.Seq
		delivered++
		if err := fn(ev); err != nil {
			return delivered, false, &callbackError{err: err}
		}
		if ev.Terminal() {
			return delivered, true, nil
		}
	}
	return delivered, false, sc.Err()
}

// WaitDone watches id until it reaches a terminal state and returns the
// final status (with the result document).
func (c *Client) WaitDone(ctx context.Context, id string) (serve.JobStatus, error) {
	err := c.Watch(ctx, id, func(serve.Event) error { return nil })
	if err != nil {
		return serve.JobStatus{}, err
	}
	return c.Get(ctx, id)
}

// Workers lists the fleet's registered workers — coordinator-mode servers
// only (standalone servers answer 404).
func (c *Client) Workers(ctx context.Context) ([]fleet.WorkerInfo, error) {
	var out []fleet.WorkerInfo
	err := c.do(ctx, http.MethodGet, "/fleet/v1/workers", nil, &out)
	return out, err
}

// DrainWorker marks a fleet worker draining: it finishes its active
// leases and is handed no new ones.
func (c *Client) DrainWorker(ctx context.Context, id string) (fleet.WorkerInfo, error) {
	var out fleet.WorkerInfo
	err := c.do(ctx, http.MethodPost, "/fleet/v1/workers/"+id+"/drain", nil, &out)
	return out, err
}
