// Package fleet is the distributed execution tier over the serve layer:
// one coordinator that owns the job queue, admission control, and the
// result store, plus N stateless workers that register, heartbeat, lease
// jobs over HTTP, execute them on a local exp.Runner, and publish results
// back.
//
// The coordinator is a serve.Executor: it plugs into serve.Config.Executor
// so the public /v1/jobs API, the SSE event streams, the durable journal,
// and the admission path are exactly the standalone server's — only the
// execution backend changes. Lease state is persisted through the same
// journal (journal.OpLeased / journal.OpRequeued records), so a
// coordinator crash re-queues leased jobs just like interrupted local
// runs. Identical job specs coalesce fleet-wide onto one lease, and the
// per-simulation results are content-addressed in the coordinator's
// store, which workers reach over HTTP (see store.go) — so work is never
// repeated anywhere in the fleet, with or without a shared filesystem.
//
// Coordinator API (all JSON, under /fleet/v1/, inbound from workers and
// conspec-ctl):
//
//	POST /fleet/v1/register            RegisterRequest -> RegisterResponse
//	                                   (409 IdentityMismatchError when the
//	                                    worker binary differs)
//	POST /fleet/v1/heartbeat           HeartbeatRequest -> HeartbeatResponse
//	                                   (410 when the worker is unknown —
//	                                    re-register)
//	POST /fleet/v1/lease               LeaseRequest -> LeaseGrant | 204
//	                                   (long-polls up to wait_ms)
//	POST /fleet/v1/leases/{id}/progress ProgressPost -> ProgressReply
//	POST /fleet/v1/leases/{id}/result  ResultPost -> ResultReply
//	GET  /fleet/v1/workers             []WorkerInfo
//	POST /fleet/v1/workers/{id}/drain  WorkerInfo
//	GET  /fleet/v1/results/{key}       cached pipeline.Result | 404
//	PUT  /fleet/v1/results/{key}       store a result -> 204
//
// Workers make only outbound requests (register, heartbeat, lease,
// publish), so they run behind NAT with no inbound port; their metrics
// ride the heartbeat and are merged into the coordinator's /metrics
// exposition with a worker label.
package fleet

import (
	"encoding/json"
	"fmt"
	"time"

	"conspec/internal/exp"
	"conspec/internal/serve"
)

// RegisterRequest announces a worker to the coordinator.
type RegisterRequest struct {
	// Name is the worker's requested stable name (empty = coordinator
	// assigns one). Re-registering an existing name replaces that worker:
	// its leases are re-queued as if it had died.
	Name string `json:"name,omitempty"`
	// Identity is the worker binary's buildinfo.Info.Identity(). It must
	// equal the coordinator's: results are content-addressed by build
	// identity, so a mismatched binary would poison the shared store.
	Identity string `json:"identity"`
	// Slots is how many leases the worker executes concurrently (min 1).
	Slots int `json:"slots"`
}

// RegisterResponse acknowledges a registration.
type RegisterResponse struct {
	// Worker is the assigned worker id — the credential for every
	// subsequent call.
	Worker string `json:"worker"`
	// HeartbeatMS is the interval the coordinator expects heartbeats at;
	// missing several in a row marks the worker dead and re-queues its
	// leases.
	HeartbeatMS int64 `json:"heartbeat_ms"`
	// Identity echoes the coordinator's build identity.
	Identity string `json:"identity"`
}

// IdentityMismatchError is the typed 409 body a registration with a
// mismatched build identity receives (and the error ErrIdentityMismatch
// wraps client-side). Both identities are included so the operator can see
// exactly which binary is stale.
type IdentityMismatchError struct {
	Err                 string `json:"error"`
	CoordinatorIdentity string `json:"coordinator_identity"`
	WorkerIdentity      string `json:"worker_identity"`
}

// Error implements error.
func (e *IdentityMismatchError) Error() string {
	return fmt.Sprintf("build identity mismatch: coordinator runs %q, worker runs %q", e.CoordinatorIdentity, e.WorkerIdentity)
}

// HeartbeatRequest is the worker's periodic liveness report.
type HeartbeatRequest struct {
	Worker string `json:"worker"`
	// Leases lists the lease ids the worker is currently executing.
	Leases []string `json:"leases,omitempty"`
	// Metrics is a snapshot of the worker's cumulative counters
	// (runs_executed_total, cache_hits_remote_total, ...), merged into the
	// coordinator's Prometheus exposition with a worker label.
	Metrics map[string]uint64 `json:"metrics,omitempty"`
}

// HeartbeatResponse carries coordinator->worker control signals.
type HeartbeatResponse struct {
	// Canceled lists leases held by this worker whose jobs were canceled;
	// the worker must stop executing them and publish a canceled result.
	Canceled []string `json:"canceled,omitempty"`
	// Draining tells the worker it has been drained: finish active leases,
	// take no new ones.
	Draining bool `json:"draining,omitempty"`
}

// LeaseRequest asks for work.
type LeaseRequest struct {
	Worker string `json:"worker"`
	// WaitMS long-polls: the coordinator holds the request up to this long
	// waiting for a queued job before answering 204.
	WaitMS int64 `json:"wait_ms,omitempty"`
}

// LeaseGrant hands one job to a worker.
type LeaseGrant struct {
	// Lease is the lease id (the job id it executes).
	Lease string `json:"lease"`
	// Gen is the lease generation: it increments each time the lease is
	// re-queued after a worker death, and every progress/result post must
	// echo it — posts from a stale generation are ignored, which is what
	// makes "worker killed mid-lease" safe from duplicated results.
	Gen int `json:"gen"`
	// Spec is the job to execute.
	Spec serve.JobSpec `json:"spec"`
	// Recovered marks a job replayed from the coordinator's journal.
	Recovered bool `json:"recovered,omitempty"`
}

// ProgressPost forwards a batch of engine progress events for a lease, in
// emission order.
type ProgressPost struct {
	Worker string              `json:"worker"`
	Gen    int                 `json:"gen"`
	Events []exp.ProgressEvent `json:"events"`
}

// ProgressReply piggybacks cancellation on the progress stream, so a
// cancel propagates at the next flush rather than the next heartbeat.
type ProgressReply struct {
	Canceled bool `json:"canceled,omitempty"`
}

// Lease result statuses. Done/failed/canceled mirror the job states;
// abandoned is a worker shutting down mid-lease, which re-queues the job
// immediately instead of waiting out the heartbeat timeout.
const (
	ResultDone      = "done"
	ResultFailed    = "failed"
	ResultCanceled  = "canceled"
	ResultAbandoned = "abandoned"
)

// ResultPost publishes a finished lease.
type ResultPost struct {
	Worker string `json:"worker"`
	Gen    int    `json:"gen"`
	// Status is one of the Result* constants.
	Status string `json:"status"`
	// Report is the result document (report.Report JSON) on done.
	Report json.RawMessage `json:"report,omitempty"`
	// Engine carries the worker Runner's scheduler counters.
	Engine exp.Stats `json:"engine"`
	// FailedRuns counts simulations excluded from the report's aggregates.
	FailedRuns int `json:"failed_runs,omitempty"`
	// Error is the failure message on failed.
	Error string `json:"error,omitempty"`
}

// ResultReply acknowledges a result post.
type ResultReply struct {
	// Accepted is false when the post was ignored: unknown lease, stale
	// generation (the lease was re-queued and finished elsewhere), or a
	// duplicate post. Idempotent either way.
	Accepted bool `json:"accepted"`
}

// WorkerInfo is one worker's row in GET /fleet/v1/workers and
// conspec-ctl workers.
type WorkerInfo struct {
	ID    string `json:"id"`
	Slots int    `json:"slots"`
	// Active is how many leases the worker holds right now.
	Active int `json:"active"`
	// Done/Failed count leases the worker completed/failed since it
	// registered.
	Done   uint64 `json:"done"`
	Failed uint64 `json:"failed"`
	// Draining: the worker finishes its active leases but gets no new ones.
	Draining bool `json:"draining,omitempty"`
	// Lost: the worker missed enough heartbeats to be declared dead; its
	// leases were re-queued. Kept listed for visibility.
	Lost       bool      `json:"lost,omitempty"`
	Registered time.Time `json:"registered"`
	LastBeat   time.Time `json:"last_beat"`
}

// jobKeyOf derives the fleet-wide coalescing key for a job spec: the
// canonical JSON of every field that affects the result document (the
// whole spec — JobSpec marshals deterministically). Two jobs with equal
// keys share one lease and one execution.
func jobKeyOf(spec serve.JobSpec) string {
	b, err := json.Marshal(spec)
	if err != nil {
		// JobSpec is plain data; Marshal cannot fail. Fall back to no
		// coalescing rather than panic.
		return ""
	}
	return string(b)
}
