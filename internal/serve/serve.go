// Package serve is the simulation-as-a-service layer: an HTTP JSON daemon
// that accepts experiment-suite submissions, executes them on a bounded
// worker pool over the exp.Runner engine, streams typed progress events to
// clients via SSE, and persists results through the engine's disk cache so
// identical runs are served without simulation across restarts and across
// clients.
//
// API (all JSON):
//
//	POST   /v1/jobs             submit a JobSpec  -> 202 JobStatus
//	                            (429 + Retry-After when the queue is full,
//	                             503 while draining)
//	GET    /v1/jobs             list jobs (newest first, no result bodies)
//	GET    /v1/jobs/{id}        job status; includes the result document
//	                            (the same shape as conspec-bench -json)
//	                            once the job is done
//	GET    /v1/jobs/{id}/events SSE stream: full event history replay, then
//	                            live "progress"/"state" frames; the stream
//	                            ends after the terminal state frame
//	DELETE /v1/jobs/{id}        cancel a queued or running job
//	GET    /v1/jobs/{id}/trace  Chrome trace-event JSON for the job's span
//	                            subtree (queue-wait, execution, per-suite,
//	                            per-run, per-phase) — load in Perfetto
//	GET    /metrics             Prometheus text exposition (server counters)
//	GET    /healthz             liveness + drain state
//	GET    /debug/pprof/        net/http/pprof profiles (Config.Pprof only)
package serve

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"sync"
	"time"

	"conspec/internal/exp"
	"conspec/internal/exp/report"
	"conspec/internal/obs/trace"
	"conspec/internal/serve/journal"
)

// Config parameterizes a Server.
type Config struct {
	// Workers bounds concurrently executing jobs (default 2). Each running
	// job drives its own exp.Runner, whose simulation concurrency is
	// bounded by SimWorkers.
	Workers int
	// QueueCap bounds jobs accepted but not yet running (default 16).
	// Submissions beyond it are rejected with 429 + Retry-After.
	QueueCap int
	// SimWorkers bounds each job's concurrent simulations (default:
	// GOMAXPROCS via the engine).
	SimWorkers int
	// RunTimeout is the default per-simulation wall-clock bound; a job
	// spec's run_timeout_ms overrides it.
	RunTimeout time.Duration
	// Cache, when non-nil, is the persistent result store shared by every
	// job's Runner (and with conspec-bench -cache-dir users of the same
	// directory). When it additionally implements CacheStats (as
	// *diskcache.Store does), its occupancy and eviction counters are
	// exported through /metrics.
	Cache exp.ResultCache
	// Journal, when non-nil, is the durable job journal: every accepted
	// job is appended (and fsynced) before the submitter sees 202, and
	// every lifecycle transition is recorded, so a kill -9 loses no
	// accepted work. Open it with journal.Open and pass the recovered
	// states via Recovered.
	Journal *journal.Journal
	// Recovered is the non-terminal job states journal.Open replayed.
	// New re-queues them (oldest first, ahead of fresh submissions) with
	// the recovered flag set on their status and re-executes them;
	// simulations that completed before the crash are served from Cache.
	Recovered []journal.State
	// Executor, when non-nil, replaces the in-process job executor: jobs
	// are handed to it instead of being run on a local exp.Runner. The
	// fleet coordinator uses this seam to dispatch jobs to remote leased
	// workers; standalone servers leave it nil and execute locally.
	Executor Executor
	// Capacity, when non-nil, reports the service's live execution
	// capacity in slots (for a fleet: registered, non-draining workers ×
	// their slots). Retry-After estimates divide the recent job latency by
	// it instead of by Workers, so backpressure hints stay accurate when
	// capacity is dynamic. Zero capacity falls back to 1 (the estimate
	// clamps at 600s anyway).
	Capacity func() int
	// Limiter, when non-nil, gates POST /v1/jobs per client with 429 +
	// Retry-After before admission. Clients are identified by the
	// X-Conspec-Client header when present, else the request's remote host.
	Limiter SubmitLimiter
	// Logf, when non-nil, receives one line per job lifecycle transition.
	Logf func(format string, args ...any)
	// SSEKeepalive is how often an idle event stream emits a comment frame
	// so intermediaries don't drop long watches (default 15s).
	SSEKeepalive time.Duration
	// TraceSpans bounds the server-wide span tracer's ring (default 16384
	// spans; the ring drops rather than grows when full).
	TraceSpans int
	// Pprof, when true, mounts net/http/pprof under /debug/pprof/.
	Pprof bool

	// execOverride swaps the job executor (test seam). It must be set via
	// Config — recovered jobs can reach a worker before New returns, so
	// assigning Server.exec afterwards would race.
	execOverride execFunc
}

// execFunc runs one job's suites and returns its report, engine stats, and
// failed-run count.
type execFunc func(ctx context.Context, j *job, emit func(exp.ProgressEvent)) (*report.Report, exp.Stats, int, error)

// Executor is the pluggable job-execution backend behind Config.Executor.
// Execute runs one job end to end and returns its result document, engine
// stats, and failed-run count; a ctx cancellation should unwind with
// ctx.Err() (the server maps it to the canceled state when the client
// requested the cancel). Execute is called from the server's worker pool,
// so implementations bound their own concurrency.
type Executor interface {
	Execute(ctx context.Context, job ExecJob) (*report.Report, exp.Stats, int, error)
}

// ExecJob is what an Executor sees of a job: identity, spec, and callbacks
// back into the server's event stream and status record.
type ExecJob struct {
	ID   string
	Spec JobSpec
	// Recovered marks a job replayed from the journal after a restart.
	Recovered bool
	// Emit forwards one engine progress event to the job's SSE watchers.
	Emit func(exp.ProgressEvent)
	// SetWorker records which fleet worker is executing (or executed) the
	// job; it shows up as the status document's worker field and in
	// conspec-ctl list. Safe to call repeatedly (re-leases overwrite).
	SetWorker func(worker string)
}

// SubmitLimiter is the per-client admission gate behind Config.Limiter.
// Allow spends one token for the client and reports whether the submission
// may proceed; when it may not, retryAfter is the suggested wait.
type SubmitLimiter interface {
	Allow(client string) (ok bool, retryAfter time.Duration)
}

// Server owns the job table, the queue, and the worker pool. Create with
// New, expose via Handler, stop with Drain (graceful) or Close (forced).
type Server struct {
	cfg   Config
	mux   *http.ServeMux
	queue chan *job
	quit  chan struct{}
	wg    sync.WaitGroup
	// epoch identifies this server process on every event frame, so a
	// reconnecting watcher can tell "same history, resume from my last
	// seq" apart from "server restarted, the history restarted too".
	epoch string

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string // submission order; listings walk it newest-first
	queued   int
	running  int
	draining bool
	// latency ring over recently completed jobs, for deriving Retry-After
	// estimates on 429/503 responses.
	recentLat [latWindow]time.Duration
	latCount  int
	latIdx    int

	metrics *serverMetrics
	// tracer holds every span the server records: HTTP requests, job
	// lifecycles (queue-wait/execute), and — through RunnerOptions.Trace —
	// each job's suite/run/phase spans. GET /v1/jobs/{id}/trace exports one
	// job's subtree.
	tracer *trace.Tracer

	// exec runs one job's suites (Config.execOverride or the default
	// implementation, which builds an exp.Runner over cfg.Cache and runs
	// the spec's suites). Fixed before the worker pool starts.
	exec execFunc
}

// New builds a Server and starts its worker pool.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 16
	}
	if cfg.SSEKeepalive <= 0 {
		cfg.SSEKeepalive = defaultSSEKeepalive
	}
	if cfg.TraceSpans <= 0 {
		cfg.TraceSpans = 16384
	}
	s := &Server{
		cfg: cfg,
		// The channel holds every recovered job plus a full queue of fresh
		// ones; admission control is the queued-count check in
		// handleSubmit, so sends under s.mu can never block.
		queue:   make(chan *job, cfg.QueueCap+len(cfg.Recovered)),
		quit:    make(chan struct{}),
		epoch:   randHex(4),
		jobs:    make(map[string]*job),
		metrics: newServerMetrics(),
		tracer:  trace.New(cfg.TraceSpans),
	}
	s.exec = s.runSuites
	if cfg.Executor != nil {
		s.exec = func(ctx context.Context, j *job, emit func(exp.ProgressEvent)) (*report.Report, exp.Stats, int, error) {
			return cfg.Executor.Execute(ctx, ExecJob{
				ID:        j.id,
				Spec:      j.spec,
				Recovered: j.recovered,
				Emit:      emit,
				SetWorker: j.setWorker,
			})
		}
	}
	if cfg.execOverride != nil {
		s.exec = cfg.execOverride
	}
	s.metrics.attachStores(cfg.Cache, cfg.Journal)
	s.recover(cfg.Recovered)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleTrace)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	if cfg.Pprof {
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Handler returns the HTTP handler serving the API above. Every request is
// wrapped in a root tracer span named "http:<method> <path>" (SSE watches
// included — their spans stay open for the watch's lifetime and export with
// their duration so far).
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sp := s.tracer.Begin(trace.NoSpan, "http:"+r.Method+" "+r.URL.Path)
		defer s.tracer.End(sp)
		s.mux.ServeHTTP(w, r)
	})
}

// Tracer exposes the server-wide span tracer (for embedding callers that
// want to export the whole timeline rather than one job's subtree).
func (s *Server) Tracer() *trace.Tracer { return s.tracer }

// recover re-queues journaled jobs (called from New, before the worker
// pool starts). Ordering is preserved: Config.Recovered arrives oldest
// first from journal.Open, and the queue channel was sized to hold all of
// them, so fresh submissions line up behind the backlog.
func (s *Server) recover(states []journal.State) {
	for _, st := range states {
		var spec JobSpec
		if err := json.Unmarshal(st.Spec, &spec); err != nil {
			s.logf("journal: job %s: dropping unreadable spec: %v", st.Job, err)
			s.journalAppend(journal.OpFailed, nil, "unreadable journaled spec: "+err.Error(), st.Job)
			continue
		}
		if err := spec.validate(); err != nil {
			// The spec was valid when accepted; a registry/bench rename
			// across the restart can invalidate it. Fail it cleanly rather
			// than crash-loop on it forever.
			s.logf("journal: job %s: spec no longer valid: %v", st.Job, err)
			s.journalAppend(journal.OpFailed, nil, "journaled spec no longer valid: "+err.Error(), st.Job)
			continue
		}
		j := newRecoveredJob(st.Job, spec, s.epoch, st.Submitted)
		j.span = s.tracer.Begin(trace.NoSpan, "job:"+j.id)
		s.tracer.Annotate(j.span, "suite", spec.Suite)
		s.tracer.Annotate(j.span, "recovered", "true")
		j.queueSpan = s.tracer.Begin(j.span, "queue-wait")
		j.onAbandoned = func() {
			if j.requestCancel() {
				s.logf("job %s: canceled (last watcher disconnected)", j.id)
			}
		}
		s.jobs[j.id] = j
		s.order = append(s.order, j.id)
		s.queued++
		s.queue <- j
		s.metrics.recovered()
		s.logf("job %s: recovered from journal (suite %s, was %s)", j.id, spec.Suite, st.Op)
	}
	s.metrics.setQueue(s.queued, 0)
}

// journalAppend records a lifecycle transition, logging rather than
// propagating append failures for non-submit ops (the submit path handles
// its error explicitly — that is the durability guarantee; later ops
// degrade to re-execution on recovery).
func (s *Server) journalAppend(op journal.Op, spec json.RawMessage, errMsg, jobID string) {
	if s.cfg.Journal == nil {
		return
	}
	if err := s.cfg.Journal.Append(op, jobID, spec, errMsg); err != nil {
		s.logf("journal: append %s for job %s: %v", op, jobID, err)
	}
}

// randHex returns n random bytes as 2n hex chars.
func randHex(n int) string {
	b := make([]byte, n)
	if _, err := rand.Read(b); err != nil {
		panic(fmt.Sprintf("serve: rand: %v", err)) // crypto/rand never fails on supported platforms
	}
	return hex.EncodeToString(b)
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// worker pulls jobs until quit closes. Drain closes quit only once the
// queue is empty, so a worker never abandons queued work.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case j := <-s.queue:
			s.process(j)
		case <-s.quit:
			// Drain any job that raced in between the counter check and
			// the close; requestCancel marked them, process() skips fast.
			for {
				select {
				case j := <-s.queue:
					s.process(j)
				default:
					return
				}
			}
		}
	}
}

// process executes one dequeued job end to end and maintains the
// queued/running accounting and server counters.
func (s *Server) process(j *job) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.tracer.End(j.queueSpan)
	if !j.begin(cancel) {
		// Canceled while queued.
		s.mu.Lock()
		s.queued--
		s.mu.Unlock()
		j.finish(StatusCanceled, nil, nil, 0, "canceled while queued")
		s.journalAppend(journal.OpCanceled, nil, "", j.id)
		s.tracer.Annotate(j.span, "status", string(StatusCanceled))
		s.tracer.End(j.span)
		s.metrics.jobFinished(StatusCanceled, exp.Stats{})
		s.logf("job %s: canceled while queued", j.id)
		return
	}
	s.mu.Lock()
	s.queued--
	s.running++
	s.mu.Unlock()
	s.journalAppend(journal.OpStarted, nil, "", j.id)
	s.metrics.setQueue(s.counts())
	s.logf("job %s: running (suite %s)", j.id, j.spec.Suite)

	started := time.Now()
	j.execSpan = s.tracer.Begin(j.span, "execute")
	rep, stats, failedRuns, err := s.exec(ctx, j, j.progress)
	s.tracer.End(j.execSpan)

	status := StatusDone
	errMsg := ""
	switch {
	case err == nil:
	case errors.Is(err, context.Canceled) && j.canceled():
		status, errMsg = StatusCanceled, "canceled"
		rep = nil
	default:
		status, errMsg = StatusFailed, err.Error()
		rep = nil
	}
	j.finish(status, rep, report.Engine(stats), failedRuns, errMsg)
	switch status {
	case StatusDone:
		s.journalAppend(journal.OpDone, nil, "", j.id)
		s.observeLatency(time.Since(started))
	case StatusFailed:
		s.journalAppend(journal.OpFailed, nil, errMsg, j.id)
	case StatusCanceled:
		s.journalAppend(journal.OpCanceled, nil, "", j.id)
	}
	s.tracer.Annotate(j.span, "status", string(status))
	s.tracer.End(j.span)

	s.mu.Lock()
	s.running--
	s.mu.Unlock()
	s.metrics.jobFinished(status, stats)
	s.metrics.setQueue(s.counts())
	s.logf("job %s: %s (executed %d, mem hits %d, disk hits %d, failed runs %d)",
		j.id, status, stats.Executed, stats.Hits, stats.DiskHits, failedRuns)
}

// canceled reports whether a cancel was requested for the job.
func (j *job) canceled() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.cancelASAP
}

// runSuites is the production job executor: one engine per job (per-job
// progress attribution and stats), the shared persistent cache underneath.
func (s *Server) runSuites(ctx context.Context, j *job, emit func(exp.ProgressEvent)) (*report.Report, exp.Stats, int, error) {
	return ExecuteSpec(ctx, j.spec, ExecOptions{
		Cache:      s.cfg.Cache,
		SimWorkers: s.cfg.SimWorkers,
		RunTimeout: s.cfg.RunTimeout,
		Trace:      s.tracer,
		TraceRoot:  j.execSpan,
	}, emit)
}

// ExecOptions parameterizes ExecuteSpec: the persistent cache tier, the
// process-level defaults a spec may narrow, and optional span tracing.
type ExecOptions struct {
	Cache      exp.ResultCache
	SimWorkers int
	RunTimeout time.Duration
	Trace      *trace.Tracer
	TraceRoot  trace.SpanID
}

// ExecuteSpec runs one JobSpec's suites on a fresh exp.Runner and returns
// the result document, engine stats, and failed-run count. It is the
// single execution path shared by the in-process worker pool and the fleet
// worker (which runs it against a tiered local+remote cache).
func ExecuteSpec(ctx context.Context, js JobSpec, o ExecOptions, emit func(exp.ProgressEvent)) (*report.Report, exp.Stats, int, error) {
	spec := exp.DefaultSpec()
	if js.Warmup > 0 {
		spec.Warmup = js.Warmup
	}
	if js.Measure > 0 {
		spec.Measure = js.Measure
	}
	spec.MetricsInterval = js.MetricsInterval
	spec.SelfCheck = js.SelfCheck
	spec.FlightWindow = js.FlightWindow

	timeout := o.RunTimeout
	if js.RunTimeoutMS > 0 {
		timeout = time.Duration(js.RunTimeoutMS) * time.Millisecond
	}
	workers := o.SimWorkers
	if js.Workers > 0 && (workers <= 0 || js.Workers < workers) {
		workers = js.Workers
	}
	runner := exp.NewRunner(exp.RunnerOptions{
		Workers:   workers,
		OnEvent:   emit,
		Timeout:   timeout,
		Cache:     o.Cache,
		Trace:     o.Trace,
		TraceRoot: o.TraceRoot,
	})
	suites, err := js.suiteIDs() // validated at submit; re-checked for defense
	if err != nil {
		return nil, exp.Stats{}, 0, err
	}
	rep := report.New()
	for _, id := range suites {
		res, err := runner.RunSuite(ctx, id, exp.Options{Spec: spec, Benches: js.Benches, Defenses: js.Defenses})
		if err != nil {
			return nil, runner.Stats(), len(runner.Errors()), err
		}
		rep.AddSuite(res)
	}
	rep.Finish(runner)
	return rep, runner.Stats(), len(runner.Errors()), nil
}

// counts returns (queued, running) under the server lock.
func (s *Server) counts() (queued, running int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queued, s.running
}

// latWindow is how many recently completed jobs the latency estimate
// averages over.
const latWindow = 8

// observeLatency records one successfully completed job's wall-clock
// execution time into the ring behind Retry-After estimates.
func (s *Server) observeLatency(d time.Duration) {
	s.mu.Lock()
	s.recentLat[s.latIdx] = d
	s.latIdx = (s.latIdx + 1) % latWindow
	if s.latCount < latWindow {
		s.latCount++
	}
	s.mu.Unlock()
}

// avgLatencyLocked averages the ring (0 when no job has completed yet).
// Caller holds s.mu.
func (s *Server) avgLatencyLocked() time.Duration {
	if s.latCount == 0 {
		return 0
	}
	var sum time.Duration
	for i := 0; i < s.latCount; i++ {
		sum += s.recentLat[i]
	}
	return sum / time.Duration(s.latCount)
}

// retryAfterSecs estimates how many seconds until capacity for `ahead`
// more jobs frees up, given the recent average job latency and the worker
// pool width: the pool completes one job every avg/workers on average.
// With no latency history yet it falls back to fallbackSecs (the
// pre-derivation constants). The estimate is clamped to [1, 600].
func retryAfterSecs(ahead, workers int, avg time.Duration, fallbackSecs int) int {
	if avg <= 0 {
		return fallbackSecs
	}
	if workers < 1 {
		workers = 1
	}
	if ahead < 1 {
		ahead = 1
	}
	est := avg * time.Duration(ahead) / time.Duration(workers)
	secs := int((est + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	if secs > 600 {
		secs = 600
	}
	return secs
}

// capacity returns the slot count Retry-After estimates divide by: the
// live fleet capacity when Config.Capacity is wired (registered,
// non-draining workers × slots), else the static local pool width. An
// empty fleet degrades to 1 — the estimate clamps at 600s regardless.
func (s *Server) capacity() int {
	if s.cfg.Capacity != nil {
		if c := s.cfg.Capacity(); c > 0 {
			return c
		}
		return 1
	}
	return s.cfg.Workers
}

// retryAfterLocked renders the Retry-After value for a rejection while
// holding s.mu. For a full queue (429) the caller should retry once one
// job finishes; for draining (503) once the whole backlog flushes.
func (s *Server) retryAfterLocked(draining bool) string {
	avg := s.avgLatencyLocked()
	if draining {
		return strconv.Itoa(retryAfterSecs(s.queued+s.running, s.capacity(), avg, 10))
	}
	return strconv.Itoa(retryAfterSecs(1, s.capacity(), avg, 2))
}

// newJobID returns a fresh random job id ("j" + 12 hex chars).
func newJobID() string {
	return "j" + randHex(6)
}

// Drain gracefully stops the server: new submissions are rejected with
// 503, queued and running jobs are completed (losing none of their
// results), and the worker pool exits. If ctx expires first, live jobs are
// canceled, the pool is still waited for, and ctx.Err() is returned.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.logf("draining: waiting for queued and running jobs")

	var err error
	tick := time.NewTicker(10 * time.Millisecond)
	defer tick.Stop()
wait:
	for {
		if q, r := s.counts(); q == 0 && r == 0 {
			break
		}
		select {
		case <-tick.C:
		case <-ctx.Done():
			err = ctx.Err()
			s.logf("drain deadline: canceling live jobs")
			s.cancelAll()
			break wait
		}
	}
	if err != nil {
		// Canceled jobs unwind quickly; wait for the counters to settle so
		// workers are idle before quit closes.
		for q, r := s.counts(); q != 0 || r != 0; q, r = s.counts() {
			time.Sleep(5 * time.Millisecond)
		}
	}
	close(s.quit)
	s.wg.Wait()
	// Defensive sweep: with admission strictly ordered against the drain
	// flag nothing should remain, but an accepted job must never be
	// silently dropped — fail anything still queued to a clean terminal
	// state and journal it.
	for {
		select {
		case j := <-s.queue:
			s.mu.Lock()
			s.queued--
			s.mu.Unlock()
			j.finish(StatusCanceled, nil, nil, 0, "server stopped before the job ran")
			s.journalAppend(journal.OpCanceled, nil, "", j.id)
			s.metrics.jobFinished(StatusCanceled, exp.Stats{})
			s.logf("job %s: canceled (server stopped before it ran)", j.id)
		default:
			s.logf("drained")
			return err
		}
	}
}

// Close force-stops the server: reject new work, cancel everything live,
// and wait for the pool. For tests and fatal shutdown paths.
func (s *Server) Close() {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.mu.Unlock()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s.Drain(ctx)
}

// cancelAll requests cancellation of every non-terminal job.
func (s *Server) cancelAll() {
	s.mu.Lock()
	jobs := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	for _, j := range jobs {
		j.requestCancel()
	}
}

// ---- handlers ----

// apiError is the JSON error body.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// clientID identifies the submitting client for quota accounting: the
// X-Conspec-Client header when the client names itself, else the remote
// host (every process behind one NAT shares a bucket — the coarse but safe
// default).
func clientID(r *http.Request) string {
	if c := r.Header.Get("X-Conspec-Client"); c != "" {
		return c
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Limiter != nil {
		if ok, retryAfter := s.cfg.Limiter.Allow(clientID(r)); !ok {
			secs := int((retryAfter + time.Second - 1) / time.Second)
			if secs < 1 {
				secs = 1
			}
			s.metrics.throttled()
			w.Header().Set("Retry-After", strconv.Itoa(secs))
			writeJSON(w, http.StatusTooManyRequests, apiError{Error: "client quota exceeded"})
			return
		}
	}
	var spec JobSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "bad job spec: " + err.Error()})
		return
	}
	if err := spec.validate(); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}

	s.mu.Lock()
	// Admission happens entirely under s.mu, strictly ordered against
	// Drain's setting of the draining flag: a submission either completes
	// its enqueue before the drain begins (and the drain then waits for
	// it) or observes draining and is rejected with a clean 503 — it can
	// never be accepted after the drain's queue audit and silently
	// dropped. Drain additionally sweeps the queue after the workers exit
	// and fails anything left, so an accepted job always reaches a
	// terminal state.
	if s.draining {
		ra := s.retryAfterLocked(true)
		s.mu.Unlock()
		w.Header().Set("Retry-After", ra)
		writeJSON(w, http.StatusServiceUnavailable, apiError{Error: "server is draining"})
		return
	}
	if s.queued >= s.cfg.QueueCap {
		ra := s.retryAfterLocked(false)
		s.mu.Unlock()
		s.metrics.rejected()
		w.Header().Set("Retry-After", ra)
		writeJSON(w, http.StatusTooManyRequests, apiError{Error: "job queue is full"})
		return
	}
	id := newJobID()
	for s.jobs[id] != nil {
		id = newJobID()
	}
	// Journal (and fsync) before the job becomes visible: a 202 means the
	// submission survives kill -9. A journal write failure refuses the
	// job — accepting work we cannot make durable would silently downgrade
	// the crash-safety contract.
	if s.cfg.Journal != nil {
		specJSON, err := json.Marshal(spec)
		if err == nil {
			err = s.cfg.Journal.Append(journal.OpSubmitted, id, specJSON, "")
		}
		if err != nil {
			s.mu.Unlock()
			s.logf("job %s: journal submit: %v", id, err)
			writeJSON(w, http.StatusInternalServerError, apiError{Error: "journal write failed: " + err.Error()})
			return
		}
	}
	j := newJob(id, spec, s.epoch)
	j.span = s.tracer.Begin(trace.NoSpan, "job:"+id)
	s.tracer.Annotate(j.span, "suite", spec.Suite)
	j.queueSpan = s.tracer.Begin(j.span, "queue-wait")
	// Arm before the job becomes visible to workers/subscribers.
	j.onAbandoned = func() {
		if j.requestCancel() {
			s.logf("job %s: canceled (last watcher disconnected)", j.id)
		}
	}
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.queued++
	// Cannot block: only this critical section sends, the channel was
	// sized for QueueCap fresh jobs plus the recovered backlog, and
	// admission above kept queued below QueueCap.
	s.queue <- j
	s.mu.Unlock()
	s.metrics.submitted()
	s.metrics.setQueue(s.counts())
	s.logf("job %s: queued (suite %s)", id, spec.Suite)
	w.Header().Set("Location", "/v1/jobs/"+id)
	writeJSON(w, http.StatusAccepted, j.snapshot(false))
}

func (s *Server) lookup(r *http.Request) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[r.PathValue("id")]
	return j, ok
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	jobs := make([]*job, 0, len(s.order))
	for _, id := range s.order {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	out := make([]JobStatus, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.snapshot(false))
	}
	sort.SliceStable(out, func(i, k int) bool { return out[i].Created.After(out[k].Created) })
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r)
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "no such job"})
		return
	}
	writeJSON(w, http.StatusOK, j.snapshot(true))
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r)
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "no such job"})
		return
	}
	if j.requestCancel() {
		// A queued job's cancel is made durable immediately: without this
		// record, a crash before a worker dequeues it would resurrect a
		// job the client was told is canceled. (The worker's own terminal
		// append for it later is an idempotent duplicate.) A running job is
		// journaled by its worker when the cancellation unwinds.
		if j.snapshot(false).Status == StatusQueued {
			s.journalAppend(journal.OpCanceled, nil, "", j.id)
		}
		s.logf("job %s: cancel requested", j.id)
	}
	writeJSON(w, http.StatusOK, j.snapshot(false))
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	queued, running := s.counts()
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"draining": draining,
		"queued":   queued,
		"running":  running,
	})
}

// handleTrace exports one job's span subtree as Chrome trace-event JSON,
// loadable in Perfetto / chrome://tracing. Open spans (a still-running job)
// export with their duration so far; the endpoint works at any job state.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r)
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "no such job"})
		return
	}
	if j.span == trace.NoSpan {
		// Span ring was full at submission; there is nothing to export.
		writeJSON(w, http.StatusNotFound, apiError{Error: "no trace recorded for job (span ring full)"})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%q", j.id+".trace.json"))
	if err := s.tracer.WriteChromeSubtree(w, j.span); err != nil {
		s.logf("job %s: trace export: %v", j.id, err)
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.metrics.setQueue(s.counts())
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.write(w)
}
