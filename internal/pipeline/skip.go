package pipeline

import (
	"sync/atomic"

	"conspec/internal/branch"
	"conspec/internal/core"
	"conspec/internal/mem"
	"conspec/internal/obs"
)

// Event-driven stall skipping.
//
// A machine waiting out a long memory latency ticks through thousands of
// cycles in which no stage does anything: nothing commits, nothing issues,
// nothing fetches, no counter moves. Those cycles are pure overhead for the
// simulator, and they dominate memory-bound workloads (the Fig. 5 suite's
// lbm/libquantum/GemsFDTD phases).
//
// The skipper works post hoc rather than predictively: after each step it
// captures a signature of every piece of state a stalled cycle could
// legally change — all statistics counters (a suspect-load retry loop, a
// store-set stall, an ICache-filter fetch stall each tick a counter every
// cycle), every structure occupancy, and the frontend/serialization
// watermarks. When two consecutive steps produce identical signatures the
// machine is provably in a fixed point: per-cycle behavior is a pure
// function of machine state, and the only cycle-dependent enablers are the
// scheduled events below. RunFor then jumps the cycle counter to one cycle
// before the next event and bulk-credits every per-cycle counter for the
// span (see creditStall), so statistics, sampled series and traces are
// byte-identical to stepping through the span — enforced by differential
// tests over every defense backend.
//
// The event horizon is the minimum of:
//
//   - every in-flight execution's completion cycle (writeback drains it,
//     waking dependents — including the column clears that un-park
//     delay-on-miss loads, which is why a skipped span can never cross a
//     wakeup those loads are waiting for: the wakeup is itself scheduled);
//   - the fetch-stall expiry (L1I miss fill time), unless fetch is halted;
//   - the fetch-queue head's dispatch-ready cycle (frontend pipeline delay);
//   - the watchdog's trip cycle (a skipped span counts toward the
//     no-progress window, so real deadlocks trip at the identical wall
//     cycle with identical diagnostics);
//   - the RunFor cycle cap.
//
// Skipping never engages under StepCycle (multi-core harnesses interleave
// cores cycle by cycle), with per-cycle self-check sweeps armed, or with a
// fault hook attached — those observers see individual cycles.

// skipDefaultDisabled is the package-wide default for new CPUs (false =
// skipping enabled). conspec-sim -no-skip and differential tests flip it;
// reads happen once per CPU construction.
var skipDefaultDisabled atomic.Bool

// SetDefaultStallSkip sets whether CPUs built after this call skip stalled
// spans (they do unless disabled here or per-CPU via SetStallSkip).
func SetDefaultStallSkip(enabled bool) { skipDefaultDisabled.Store(!enabled) }

// SetStallSkip enables or disables event-driven stall skipping for this
// CPU. Disabling is the escape hatch for debugging and for byte-identity
// differential runs; results must not depend on it (modulo the
// SkippedCycles/SkipSpans meta-counters).
func (c *CPU) SetStallSkip(enabled bool) { c.skipDisabled = !enabled }

// stepSig is the activity signature: every counter and occupancy a stalled
// cycle could legally change. Two consecutive steps with equal signatures
// mean the second did nothing — and, since per-cycle behavior is a pure
// function of this state plus the scheduled events, neither will any
// following cycle before the event horizon. Fields must be comparable; any
// new per-cycle statistic in the pipeline MUST be added here, otherwise
// cycles that only move that statistic would be skipped and it would
// undercount (the skip-on/off differential tests catch exactly this).
type stepSig struct {
	committed       uint64
	seq             uint64
	squashes        uint64
	memViolations   uint64
	unresolvedAtDis uint64
	storeSetStalls  uint64
	fetchStallsICF  uint64
	dtlbBlocks      uint64
	issuedUops      uint64

	fqLen, iqCount, robCount int
	readyLen, inflightLen    int
	awaitingLen, parkedLen   int
	outstandingMisses        int
	unresolvedBranches       int

	fetchPC         uint64
	fetchStallUntil uint64
	fetchHalted     bool

	fenceSeq           uint64
	serializeSeq       uint64
	unresolvedStoreSeq uint64

	filter core.FilterStats
	secmat core.SecMatrixStats
	tpbuf  core.TPBufStats
	branch branch.Stats

	l1i, l1d, l2, l3 mem.CacheStats
	itlb, dtlb       mem.CacheStats
	prefetches       uint64
}

func (c *CPU) captureSig(sig *stepSig) {
	sig.committed = c.stats.Committed
	sig.seq = c.seq
	sig.squashes = c.stats.Squashes
	sig.memViolations = c.stats.MemViolations
	sig.unresolvedAtDis = c.stats.UnresolvedBranchAtDispatch
	if c.storeSets != nil {
		sig.storeSetStalls = c.storeSets.Stalls
	}
	sig.fetchStallsICF = c.stats.FetchStallsICacheFilter
	sig.dtlbBlocks = c.stats.DTLBFilterBlocks
	sig.issuedUops = c.stats.Stages.IssuedUops

	sig.fqLen = c.fqLen
	sig.iqCount = c.iqCount
	sig.robCount = c.robCount
	sig.readyLen = len(c.readyList)
	sig.inflightLen = len(c.inflight)
	sig.awaitingLen = len(c.awaitingData)
	sig.parkedLen = len(c.parked)
	sig.outstandingMisses = c.outstandingMisses
	sig.unresolvedBranches = c.unresolvedBranches

	sig.fetchPC = c.fetchPC
	sig.fetchStallUntil = c.fetchStallUntil
	sig.fetchHalted = c.fetchHalted

	sig.fenceSeq = c.fenceSeq
	sig.serializeSeq = c.serializeSeq
	sig.unresolvedStoreSeq = c.unresolvedStoreSeq

	sig.filter = c.stats.Filter
	if c.secmat != nil {
		sig.secmat = c.secmat.Stats
	}
	sig.tpbuf = c.tpbuf.Stats
	sig.branch = c.bp.Stats

	sig.l1i = c.hier.L1I.Stats
	sig.l1d = c.hier.L1D.Stats
	sig.l2 = c.hier.L2.Stats
	sig.l3 = c.hier.L3.Stats
	sig.itlb = c.hier.ITLB.Stats
	sig.dtlb = c.hier.DTLB.Stats
	sig.prefetches = c.hier.Prefetches
}

// noteSig runs at the end of every armed step: it captures the activity
// signature and flags the step inert when it matches the previous one.
func (c *CPU) noteSig() {
	cur := &c.sigs[c.sigCur]
	c.captureSig(cur)
	c.inert = c.sigValid && *cur == c.sigs[c.sigCur^1]
	c.sigCur ^= 1
	c.sigValid = true
}

// fastForward jumps the cycle counter to one cycle before the next
// scheduled event (bounded by the watchdog trip cycle and capCycle),
// crediting every per-cycle counter for the skipped span. Called by RunFor
// immediately after an inert step; a no-op when the next event is due on
// the very next cycle.
func (c *CPU) fastForward(capCycle uint64) {
	target := capCycle
	if c.watchdogLimit != 0 {
		if trip := c.lastProgress + c.watchdogLimit; trip-1 < target {
			target = trip - 1
		}
	}
	for _, pe := range c.inflight {
		if pe.done-1 < target {
			target = pe.done - 1
		}
	}
	if !c.fetchHalted && c.fetchStallUntil > c.cycle && c.fetchStallUntil-1 < target {
		target = c.fetchStallUntil - 1
	}
	if c.fqLen > 0 {
		if ra := c.fetchQ[c.fqHead].readyAt; ra > c.cycle && ra-1 < target {
			target = ra - 1
		}
	}
	if target <= c.cycle {
		return
	}
	span := target - c.cycle
	c.creditStall(span)
	c.stats.Stages.SkippedCycles += span
	c.stats.Stages.SkipSpans++
	c.m.skippedCycles.Add(span)
	c.m.skipSpans.Inc()
	// Stamped at the span's END so a dump window that opens mid-span still
	// retains the event explaining its silence (no events can occur inside
	// a skipped span by construction).
	c.fr.Record(c.cycle, obs.FlightSkipSpan, 0, 0, span, false)
}

// creditStall advances the cycle counter by span, crediting the counters a
// stepped-through stall would have accumulated. The span is split at every
// interval-sampler boundary it crosses so each sampled row sees exactly the
// cumulative values it would have seen stepping cycle by cycle.
func (c *CPU) creditStall(span uint64) {
	for span > 0 {
		n := span
		if b := c.m.sampler.NextAt(); b > c.cycle && b-c.cycle < span {
			n = b - c.cycle
		}
		c.creditCycles(n)
		c.cycle += n
		span -= n
		if c.m.enabled() {
			c.m.sampler.MaybeSample(c.cycle)
		}
	}
}

// creditCycles bulk-credits n identical stalled cycles at the current
// occupancies: the per-cycle accounting from step() times n.
func (c *CPU) creditCycles(n uint64) {
	c.stats.Cycles += n
	st := &c.stats.Stages
	if c.robCount > 0 {
		st.CommitStalls += n
	}
	if c.iqCount > 0 {
		st.IssueIdleCycles += n
	}
	st.FetchQOccupancy += uint64(c.fqLen) * n
	st.IQOccupancy += uint64(c.iqCount) * n
	st.ReadyOccupancy += uint64(len(c.readyList)) * n
	st.ROBOccupancy += uint64(c.robCount) * n
	st.ExecInflight += uint64(len(c.inflight)) * n
	if c.m.enabled() {
		m := &c.m
		m.fetchQOcc.ObserveN(uint64(c.fqLen), n)
		m.iqOcc.ObserveN(uint64(c.iqCount), n)
		m.readyOcc.ObserveN(uint64(len(c.readyList)), n)
		m.robOcc.ObserveN(uint64(c.robCount), n)
		m.tpbufOcc.ObserveN(uint64(c.tpbuf.Occupancy()), n)
	}
}
