package pipeline

import (
	"fmt"
	"strings"

	"conspec/internal/core"
)

// This file is the pipeline's only bridge between the Mechanism enum in
// SecurityConfig and defense behavior: resolveHooks turns the enum into the
// precomputed core.Hooks flag struct the cycle loop reads. No other file in
// this package may name a concrete mechanism constant or predicate —
// scripts/lint_defense.sh enforces it — so adding a defense backend means
// registering it in internal/core and implementing any new hook here and at
// the hook sites, never editing mechanism switches scattered through the
// stages.
//
// SecurityConfig deliberately carries the enum rather than a core.Defense:
// the experiment layer's memo run key hashes SecurityConfig verbatim, so
// the struct must stay a flat value type with a stable format. The enum is
// the run-key identity; Hooks is the behavior it compiles to.

// resolveHooks maps sec.Mechanism to its pipeline contract via the defense
// registry. Every Mechanism constant ships with a registered backend, so a
// failed lookup is a programmer error (an unregistered constant), not a
// user-input error — user-facing name validation happens in the CLIs and
// serve via core.LookupDefense before a SecurityConfig is ever built.
func resolveHooks(sec SecurityConfig) core.Hooks {
	h, ok := core.HooksFor(sec.Mechanism)
	if !ok {
		panic(fmt.Sprintf("pipeline: mechanism %d (%s) has no registered defense (registered: %s)",
			uint8(sec.Mechanism), sec.Mechanism, strings.Join(core.DefenseNames(), ", ")))
	}
	return h
}
